"""Lazy, bounded-memory distance evaluation for large point clouds.

The dense memoisation in :class:`~repro.metric.space.PointCloudSpace` keeps a
full ``(n, n)`` matrix, which stops being an option long before the paper's
headline scales (n = 50,000 would need ~20 GB).  This module provides the
large-n alternative: the virtual distance matrix is partitioned into square
*blocks* of side ``block_size``, and only a bounded number of materialised
blocks is kept in an LRU cache.  Everything else is computed on demand, in
chunks, so peak extra memory is ``O(block cache + chunk)`` regardless of n.

Access patterns map onto three strategies:

* **Dense-ish batches** — when one ``pair_distances`` call asks for at least
  ``materialize_threshold`` pairs inside the same block, the whole block is
  materialised once (amortising to at most ``block_size`` distance
  evaluations per requested pair) and cached for future calls.
* **Scattered pairs** — pairs that do not justify a block are computed
  directly with the vectorised distance function, ``pair_chunk`` pairs at a
  time, bounding the temporary arrays.
* **Rows** — ``distances_from`` (the k-center / nearest-neighbour hot path)
  computes the row directly in candidate chunks; rows are transient by
  nature (greedy passes never revisit one), so they bypass the block cache.

Results are bit-identical to the dense backend for the broadcastable
distance functions: blocks, chunks and scalars all reduce over the same
contiguous ``axis=-1`` slices, and every built-in distance is symmetric
under argument swap, so canonicalising a pair to its upper-triangle block
cannot change the value.  :mod:`tests.test_metric_lazy` asserts the exact
equality.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.metric.distances import cross_distances

#: Default side length of a materialised distance block.
DEFAULT_BLOCK_SIZE = 1024

#: Default number of blocks the LRU cache retains.
DEFAULT_MAX_BLOCKS = 32

#: Cap on the number of pairs evaluated per direct (non-block) chunk.
DEFAULT_PAIR_CHUNK = 65536

#: Byte budget for the broadcast temporary while filling one block.
_BLOCK_FILL_BUDGET_BYTES = 8 * 1024 * 1024


class BlockLRUCache:
    """LRU cache of materialised distance-matrix blocks.

    Keys are ``(block_row, block_col)`` tuples with ``block_row <=
    block_col`` (the lazy backend canonicalises pairs into the upper
    triangle); values are dense float blocks.  The cache never holds more
    than ``max_blocks`` blocks, so its memory is bounded by
    :attr:`capacity_bytes` independent of the number of records.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_blocks: int = DEFAULT_MAX_BLOCKS,
    ):
        block_size = int(block_size)
        max_blocks = int(max_blocks)
        if block_size < 1:
            raise InvalidParameterError(f"block_size must be positive, got {block_size}")
        if max_blocks < 1:
            raise InvalidParameterError(f"max_blocks must be positive, got {max_blocks}")
        self.block_size = block_size
        self.max_blocks = max_blocks
        self._blocks: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._blocks

    def get(self, key: Tuple[int, int]) -> Optional[np.ndarray]:
        """Return the cached block for *key* (and mark it recently used), or ``None``."""
        block = self._blocks.get(key)
        if block is None:
            self.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        return block

    def put(self, key: Tuple[int, int], block: np.ndarray) -> None:
        """Insert *block* under *key*, evicting least-recently-used blocks if full."""
        self._blocks[key] = block
        self._blocks.move_to_end(key)
        while len(self._blocks) > self.max_blocks:
            self._blocks.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every cached block (statistics are kept)."""
        self._blocks.clear()

    @property
    def capacity_bytes(self) -> int:
        """Upper bound on cached-block memory: ``max_blocks * block_size**2 * 8``."""
        return self.max_blocks * self.block_size * self.block_size * 8

    @property
    def current_bytes(self) -> int:
        """Memory currently held by cached blocks."""
        return sum(block.nbytes for block in self._blocks.values())

    def stats(self) -> Dict[str, int]:
        """Plain-dict snapshot of the cache counters (for bench/report rows)."""
        return {
            "blocks": len(self._blocks),
            "block_size": self.block_size,
            "max_blocks": self.max_blocks,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "current_bytes": self.current_bytes,
            "capacity_bytes": self.capacity_bytes,
        }


class LazyBlockBackend:
    """Block-wise distance evaluation over a coordinate matrix.

    Parameters
    ----------
    points:
        ``(n, d)`` float coordinate matrix (not copied).
    distance_fn:
        A broadcastable distance callable from :mod:`repro.metric.distances`.
        Only functions whose batched results are bit-identical to their
        scalar results may be used here; :class:`~repro.metric.space.PointCloudSpace`
        enforces that before constructing a backend.
    block_size, max_blocks:
        Geometry and capacity of the :class:`BlockLRUCache`.
    pair_chunk:
        Maximum number of pairs (or row candidates) evaluated per direct
        vectorised chunk; bounds temporary memory at ``O(pair_chunk * d)``.
    materialize_threshold:
        Minimum number of same-block pairs in a single ``pair_distances``
        call that justifies materialising the block (default:
        ``block_size``, i.e. at most ``block_size`` distance evaluations per
        requested pair before amortisation).
    """

    def __init__(
        self,
        points: np.ndarray,
        distance_fn: Callable,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_blocks: int = DEFAULT_MAX_BLOCKS,
        pair_chunk: int = DEFAULT_PAIR_CHUNK,
        materialize_threshold: Optional[int] = None,
    ):
        pair_chunk = int(pair_chunk)
        if pair_chunk < 1:
            raise InvalidParameterError(f"pair_chunk must be positive, got {pair_chunk}")
        self.points = points
        self.distance_fn = distance_fn
        self.cache = BlockLRUCache(block_size=block_size, max_blocks=max_blocks)
        self.pair_chunk = pair_chunk
        if materialize_threshold is None:
            materialize_threshold = self.cache.block_size
        self.materialize_threshold = max(1, int(materialize_threshold))
        self.direct_pairs = 0
        self.materialized_blocks = 0

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_blocks(self) -> int:
        """Number of blocks per matrix side."""
        size = self.cache.block_size
        return (self.n_points + size - 1) // size

    def _fill_block(self, key: Tuple[int, int]) -> np.ndarray:
        """Materialise and cache the block at *key*; returns the block."""
        size = self.cache.block_size
        n = self.n_points
        bi, bj = key
        rows = self.points[bi * size : min((bi + 1) * size, n)]
        cols = self.points[bj * size : min((bj + 1) * size, n)]
        block = np.empty((len(rows), len(cols)), dtype=float)
        # Fill in row stripes so the (stripe, cols, d) broadcast temporary
        # stays under the byte budget even for wide blocks.
        dim = max(1, self.points.shape[1])
        stripe = max(1, _BLOCK_FILL_BUDGET_BYTES // (max(1, len(cols)) * dim * 8))
        for start in range(0, len(rows), stripe):
            block[start : start + stripe] = cross_distances(
                self.distance_fn, rows[start : start + stripe], cols
            )
        self.cache.put(key, block)
        self.materialized_blocks += 1
        return block

    def _compute_direct(
        self, ii: np.ndarray, jj: np.ndarray, positions: np.ndarray, out: np.ndarray
    ) -> None:
        """Evaluate scattered pairs at *positions* directly, in bounded chunks."""
        for start in range(0, len(positions), self.pair_chunk):
            pos = positions[start : start + self.pair_chunk]
            out[pos] = self.distance_fn(self.points[ii[pos]], self.points[jj[pos]])
        self.direct_pairs += len(positions)

    def pair_distances(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Distances for paired indices ``(i[k], j[k])`` with bounded memory.

        Pairs are canonicalised into the upper block triangle (every built-in
        distance is symmetric), grouped by block, and served from cached
        blocks where possible; blocks attracting at least
        ``materialize_threshold`` pairs are materialised, the rest are
        computed directly in chunks.
        """
        m = len(i)
        out = np.empty(m, dtype=float)
        if m == 0:
            return out
        size = self.cache.block_size
        swap = (i // size) > (j // size)
        ii = np.where(swap, j, i)
        jj = np.where(swap, i, j)
        bi = ii // size
        bj = jj // size
        block_ids = bi * self.n_blocks + bj
        order = np.argsort(block_ids, kind="stable")
        ids_sorted = block_ids[order]
        starts = np.flatnonzero(np.r_[True, ids_sorted[1:] != ids_sorted[:-1]])
        ends = np.r_[starts[1:], m]
        direct_groups = []
        for start, end in zip(starts, ends):
            group = order[start:end]
            key = divmod(int(ids_sorted[start]), self.n_blocks)
            block = self.cache.get(key)
            if block is None and (end - start) >= self.materialize_threshold:
                block = self._fill_block(key)
            if block is None:
                direct_groups.append(group)
            else:
                out[group] = block[ii[group] - key[0] * size, jj[group] - key[1] * size]
        if direct_groups:
            positions = (
                np.concatenate(direct_groups) if len(direct_groups) > 1 else direct_groups[0]
            )
            self._compute_direct(ii, jj, positions, out)
        return out

    def distances_from(self, i: int, candidates: np.ndarray) -> np.ndarray:
        """Distances from record *i* to each candidate, computed in chunks.

        Rows bypass the block cache: the callers that need rows (greedy
        k-center, exact neighbour scans) visit each row at most once, so
        caching them would only evict blocks that scattered pair queries
        still profit from.
        """
        out = np.empty(len(candidates), dtype=float)
        row = self.points[i]
        for start in range(0, len(candidates), self.pair_chunk):
            idx = candidates[start : start + self.pair_chunk]
            out[start : start + len(idx)] = self.distance_fn(row, self.points[idx])
        return out

    def distance(self, i: int, j: int) -> float:
        """Scalar distance; served from a cached block when one covers the pair."""
        size = self.cache.block_size
        a, b = (i, j) if i // size <= j // size else (j, i)
        key = (a // size, b // size)
        block = self.cache.get(key)
        if block is not None:
            return float(block[a - key[0] * size, b - key[1] * size])
        return float(self.distance_fn(self.points[a], self.points[b]))

    def stats(self) -> Dict[str, int]:
        """Cache statistics plus backend-level counters."""
        stats = self.cache.stats()
        stats["direct_pairs"] = self.direct_pairs
        stats["materialized_blocks"] = self.materialized_blocks
        return stats
