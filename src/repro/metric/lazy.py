"""Lazy, bounded-memory distance evaluation for large point clouds.

The dense memoisation in :class:`~repro.metric.space.PointCloudSpace` keeps a
full ``(n, n)`` matrix, which stops being an option long before the paper's
headline scales (n = 50,000 would need ~20 GB).  This module provides the
large-n alternative: the virtual distance matrix is partitioned into square
*blocks* of side ``block_size``, and only a bounded number of materialised
blocks is kept in an LRU cache.  Everything else is computed on demand, in
chunks, so peak extra memory is ``O(block cache + chunk)`` regardless of n.

Access patterns map onto three strategies:

* **Dense-ish batches** — when one ``pair_distances`` call asks for at least
  ``materialize_threshold`` pairs inside the same block, the whole block is
  materialised once (amortising to at most ``block_size`` distance
  evaluations per requested pair) and cached for future calls.
* **Scattered pairs** — pairs that do not justify a block are computed
  directly with the vectorised distance function, ``pair_chunk`` pairs at a
  time, bounding the temporary arrays.
* **Rows** — ``distances_from`` (the k-center / nearest-neighbour hot path)
  computes the row directly in candidate chunks; rows are transient by
  nature (greedy passes never revisit one), so they bypass the block cache.

:class:`DiskBlockBackend` extends the same machinery past what an
in-memory cache can amortise: evicted blocks and computed rows *spill* to
memory-mapped :class:`~repro.storage.blockfile.BlockStorage` files and are
**reloaded instead of recomputed** on re-access, which is what makes
n = 1,000,000 workloads tractable at flat RSS (the ``scaling`` bench tier
records the reload counters).

Results are bit-identical to the dense backend for the broadcastable
distance functions: blocks, chunks, rows and scalars all reduce over the
same contiguous ``axis=-1`` slices, and every built-in distance is
symmetric under argument swap, so canonicalising a pair to its
upper-triangle block — or serving it from a stored row — cannot change
the value.  :mod:`tests.test_metric_lazy` and :mod:`tests.test_metric_disk`
assert the exact equality.
"""

from __future__ import annotations

import shutil
import tempfile
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.exceptions import InvalidParameterError
from repro.metric.distances import cross_distances
from repro.storage import BlockStorage

#: Default side length of a materialised distance block.
DEFAULT_BLOCK_SIZE = 1024

#: Default number of blocks the LRU cache retains.
DEFAULT_MAX_BLOCKS = 32

#: Cap on the number of pairs evaluated per direct (non-block) chunk.
DEFAULT_PAIR_CHUNK = 65536

#: Byte budget for the broadcast temporary while filling one block.
_BLOCK_FILL_BUDGET_BYTES = 8 * 1024 * 1024


class BlockLRUCache:
    """LRU cache of materialised distance-matrix blocks.

    Keys are ``(block_row, block_col)`` tuples with ``block_row <=
    block_col`` (the lazy backend canonicalises pairs into the upper
    triangle); values are dense float blocks.  The cache never holds more
    than ``max_blocks`` blocks, so its memory is bounded by
    :attr:`capacity_bytes` independent of the number of records.

    An optional :attr:`on_evict` callback observes every eviction with the
    evicted ``(key, block)`` — the hook the disk-spill backend uses to
    write blocks out instead of forgetting them.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_blocks: int = DEFAULT_MAX_BLOCKS,
    ):
        block_size = int(block_size)
        max_blocks = int(max_blocks)
        if block_size < 1:
            raise InvalidParameterError(f"block_size must be positive, got {block_size}")
        if max_blocks < 1:
            raise InvalidParameterError(f"max_blocks must be positive, got {max_blocks}")
        self.block_size = block_size
        self.max_blocks = max_blocks
        self._blocks: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Called as ``on_evict(key, block)`` for every evicted block.
        self.on_evict: Optional[Callable[[Tuple[int, int], np.ndarray], None]] = None

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._blocks

    def get(self, key: Tuple[int, int]) -> Optional[np.ndarray]:
        """Return the cached block for *key* (and mark it recently used), or ``None``."""
        block = self._blocks.get(key)
        if block is None:
            self.misses += 1
            return None
        self._blocks.move_to_end(key)
        self.hits += 1
        return block

    def put(self, key: Tuple[int, int], block: np.ndarray) -> None:
        """Insert *block* under *key*, evicting least-recently-used blocks if full."""
        self._blocks[key] = block
        self._blocks.move_to_end(key)
        while len(self._blocks) > self.max_blocks:
            evicted_key, evicted = self._blocks.popitem(last=False)
            self.evictions += 1
            obs.inc("metric.block_evictions")
            if self.on_evict is not None:
                self.on_evict(evicted_key, evicted)

    def clear(self) -> None:
        """Drop every cached block (statistics are kept)."""
        self._blocks.clear()

    @property
    def capacity_bytes(self) -> int:
        """Upper bound on cached-block memory: ``max_blocks * block_size**2 * 8``."""
        return self.max_blocks * self.block_size * self.block_size * 8

    @property
    def current_bytes(self) -> int:
        """Memory currently held by cached blocks."""
        return sum(block.nbytes for block in self._blocks.values())

    def stats(self) -> Dict[str, int]:
        """Plain-dict snapshot of the cache counters (for bench/report rows)."""
        return {
            "blocks": len(self._blocks),
            "block_size": self.block_size,
            "max_blocks": self.max_blocks,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "current_bytes": self.current_bytes,
            "capacity_bytes": self.capacity_bytes,
        }


class LazyBlockBackend:
    """Block-wise distance evaluation over a coordinate matrix.

    Parameters
    ----------
    points:
        ``(n, d)`` float coordinate matrix (not copied).
    distance_fn:
        A broadcastable distance callable from :mod:`repro.metric.distances`.
        Only functions whose batched results are bit-identical to their
        scalar results may be used here; :class:`~repro.metric.space.PointCloudSpace`
        enforces that before constructing a backend.
    block_size, max_blocks:
        Geometry and capacity of the :class:`BlockLRUCache`.
    pair_chunk:
        Maximum number of pairs (or row candidates) evaluated per direct
        vectorised chunk; bounds temporary memory at ``O(pair_chunk * d)``.
    materialize_threshold:
        Minimum number of same-block pairs in a single ``pair_distances``
        call that justifies materialising the block (default:
        ``block_size``, i.e. at most ``block_size`` distance evaluations per
        requested pair before amortisation).
    """

    def __init__(
        self,
        points: np.ndarray,
        distance_fn: Callable,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_blocks: int = DEFAULT_MAX_BLOCKS,
        pair_chunk: int = DEFAULT_PAIR_CHUNK,
        materialize_threshold: Optional[int] = None,
    ):
        pair_chunk = int(pair_chunk)
        if pair_chunk < 1:
            raise InvalidParameterError(f"pair_chunk must be positive, got {pair_chunk}")
        self.points = points
        self.distance_fn = distance_fn
        self.cache = BlockLRUCache(block_size=block_size, max_blocks=max_blocks)
        self.pair_chunk = pair_chunk
        if materialize_threshold is None:
            materialize_threshold = self.cache.block_size
        self.materialize_threshold = max(1, int(materialize_threshold))
        self.direct_pairs = 0
        self.materialized_blocks = 0

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_blocks(self) -> int:
        """Number of blocks per matrix side."""
        size = self.cache.block_size
        return (self.n_points + size - 1) // size

    def _get_block(self, key: Tuple[int, int]) -> Optional[np.ndarray]:
        """Look up an already-materialised block (cache only here).

        The single seam between the in-memory and the disk-spill backends:
        :class:`DiskBlockBackend` overrides this to reload spilled blocks
        from its block file on a cache miss, so every serving path — pair
        batches and scalar lookups alike — reloads instead of recomputing
        without knowing where the block came from.
        """
        return self.cache.get(key)

    def _fill_block(self, key: Tuple[int, int]) -> np.ndarray:
        """Materialise and cache the block at *key*; returns the block."""
        size = self.cache.block_size
        n = self.n_points
        bi, bj = key
        rows = self.points[bi * size : min((bi + 1) * size, n)]
        cols = self.points[bj * size : min((bj + 1) * size, n)]
        block = np.empty((len(rows), len(cols)), dtype=float)
        # Fill in row stripes so the (stripe, cols, d) broadcast temporary
        # stays under the byte budget even for wide blocks.
        dim = max(1, self.points.shape[1])
        stripe = max(1, _BLOCK_FILL_BUDGET_BYTES // (max(1, len(cols)) * dim * 8))
        for start in range(0, len(rows), stripe):
            block[start : start + stripe] = cross_distances(
                self.distance_fn, rows[start : start + stripe], cols
            )
        self.cache.put(key, block)
        self.materialized_blocks += 1
        obs.inc("metric.blocks_materialized")
        return block

    def _compute_direct(
        self, ii: np.ndarray, jj: np.ndarray, positions: np.ndarray, out: np.ndarray
    ) -> None:
        """Evaluate scattered pairs at *positions* directly, in bounded chunks."""
        for start in range(0, len(positions), self.pair_chunk):
            pos = positions[start : start + self.pair_chunk]
            out[pos] = self.distance_fn(self.points[ii[pos]], self.points[jj[pos]])
        self.direct_pairs += len(positions)

    def pair_distances(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Distances for paired indices ``(i[k], j[k])`` with bounded memory.

        Pairs are canonicalised into the upper block triangle (every built-in
        distance is symmetric), grouped by block, and served from cached
        blocks where possible; blocks attracting at least
        ``materialize_threshold`` pairs are materialised, the rest are
        computed directly in chunks.
        """
        m = len(i)
        out = np.empty(m, dtype=float)
        if m == 0:
            return out
        size = self.cache.block_size
        swap = (i // size) > (j // size)
        ii = np.where(swap, j, i)
        jj = np.where(swap, i, j)
        bi = ii // size
        bj = jj // size
        block_ids = bi * self.n_blocks + bj
        order = np.argsort(block_ids, kind="stable")
        ids_sorted = block_ids[order]
        starts = np.flatnonzero(np.r_[True, ids_sorted[1:] != ids_sorted[:-1]])
        ends = np.r_[starts[1:], m]
        direct_groups = []
        for start, end in zip(starts, ends):
            group = order[start:end]
            key = divmod(int(ids_sorted[start]), self.n_blocks)
            block = self._get_block(key)
            if block is None and (end - start) >= self.materialize_threshold:
                block = self._fill_block(key)
            if block is None:
                direct_groups.append(group)
            else:
                out[group] = block[ii[group] - key[0] * size, jj[group] - key[1] * size]
        if direct_groups:
            positions = (
                np.concatenate(direct_groups) if len(direct_groups) > 1 else direct_groups[0]
            )
            self._compute_direct(ii, jj, positions, out)
        return out

    def distances_from(self, i: int, candidates: np.ndarray) -> np.ndarray:
        """Distances from record *i* to each candidate, computed in chunks.

        Rows bypass the block cache: the callers that need rows (greedy
        k-center, exact neighbour scans) visit each row at most once, so
        caching them would only evict blocks that scattered pair queries
        still profit from.
        """
        out = np.empty(len(candidates), dtype=float)
        row = self.points[i]
        for start in range(0, len(candidates), self.pair_chunk):
            idx = candidates[start : start + self.pair_chunk]
            out[start : start + len(idx)] = self.distance_fn(row, self.points[idx])
        return out

    def distance(self, i: int, j: int) -> float:
        """Scalar distance; served from a cached block when one covers the pair."""
        size = self.cache.block_size
        a, b = (i, j) if i // size <= j // size else (j, i)
        key = (a // size, b // size)
        block = self._get_block(key)
        if block is not None:
            return float(block[a - key[0] * size, b - key[1] * size])
        return float(self.distance_fn(self.points[a], self.points[b]))

    def stats(self) -> Dict[str, int]:
        """Cache statistics plus backend-level counters."""
        stats = self.cache.stats()
        stats["direct_pairs"] = self.direct_pairs
        stats["materialized_blocks"] = self.materialized_blocks
        return stats


class DiskBlockBackend(LazyBlockBackend):
    """Block-wise evaluation that spills to disk and reloads instead of recomputing.

    The in-memory lazy backend forgets every block the LRU cache evicts, so
    workloads whose working set exceeds the cache *recompute* distances —
    cheap at n = 50,000, prohibitive at n = 1,000,000.  This backend keeps
    the same access strategies and the same bit-identical values but backs
    the cache with two :class:`~repro.storage.blockfile.BlockStorage` spill
    files (fixed-size mmap slots, per-slot CRC, LM-DiskANN's node-block
    layout):

    * ``blocks.rblk`` — square distance blocks, written once on their first
      eviction (block contents never change, so re-evictions are free) and
      reloaded through :meth:`_get_block` on any later miss;
    * ``rows.rblk`` — full distance rows (one slot holds ``n`` float64s).
      A row is stored when a full-sweep :meth:`distances_from` computes it,
      or when the *cumulative* constant-record ``pair_distances`` traffic
      pinned on a single record reaches ``row_threshold`` pairs (the
      Count-Max access pattern: every tournament round re-asks the query
      record in sample-sized batches).  Every later row-shaped or
      constant-record request is served from the stored row.

    ``reloads`` counts every serve from a spill file — the
    reload-not-recompute evidence the scaling bench records.  Spill files
    live in *spill_dir* (a private temp directory by default, removed when
    the backend is garbage-collected).
    """

    def __init__(
        self,
        points: np.ndarray,
        distance_fn: Callable,
        block_size: int = DEFAULT_BLOCK_SIZE,
        max_blocks: int = DEFAULT_MAX_BLOCKS,
        pair_chunk: int = DEFAULT_PAIR_CHUNK,
        materialize_threshold: Optional[int] = None,
        spill_dir: Optional[Path | str] = None,
        row_threshold: Optional[int] = None,
    ):
        super().__init__(
            points,
            distance_fn,
            block_size=block_size,
            max_blocks=max_blocks,
            pair_chunk=pair_chunk,
            materialize_threshold=materialize_threshold,
        )
        if spill_dir is None:
            spill_dir = tempfile.mkdtemp(prefix="repro-metric-spill-")
            # Owned temp dir: removed at GC.  The finalizer must not
            # reference self, or it would pin the backend alive forever.
            self._spill_finalizer = weakref.finalize(
                self, shutil.rmtree, spill_dir, ignore_errors=True
            )
        else:
            Path(spill_dir).mkdir(parents=True, exist_ok=True)
            self._spill_finalizer = None
        self.spill_dir = Path(spill_dir)
        size = self.cache.block_size
        self._block_file = BlockStorage.create(
            self.spill_dir / "blocks.rblk", slot_size=size * size * 8
        )
        self._row_file: Optional[BlockStorage] = None  # one slot = n float64s
        self._block_slot: Dict[Tuple[int, int], int] = {}
        self._row_slot: Dict[int, int] = {}
        if row_threshold is None:
            # Storing a row costs n evaluations; amortise it over at least
            # n/4 served pairs (<= 4 evaluations per pair before reuse).
            row_threshold = max(1, self.n_points // 4)
        self.row_threshold = max(1, int(row_threshold))
        self._anchor_demand: Dict[int, int] = {}
        self.spills = 0
        self.reloads = 0
        self.rows_stored = 0
        self.cache.on_evict = self._spill_block

    # -- square-block spill path ----------------------------------------------

    def _block_shape(self, key: Tuple[int, int]) -> Tuple[int, int]:
        size = self.cache.block_size
        n = self.n_points
        bi, bj = key
        return (min(size, n - bi * size), min(size, n - bj * size))

    def _spill_block(self, key: Tuple[int, int], block: np.ndarray) -> None:
        """Eviction hook: write the block out unless it is already on disk.

        Blocks are immutable once materialised, so a block evicted, reloaded
        and evicted again never needs a second write.
        """
        if key in self._block_slot:
            return
        payload = np.ascontiguousarray(block, dtype=float).tobytes()
        self._block_slot[key] = self._block_file.append(payload)
        self.spills += 1
        obs.inc("metric.spills")

    def _get_block(self, key: Tuple[int, int]) -> Optional[np.ndarray]:
        block = self.cache.get(key)
        if block is not None:
            return block
        slot = self._block_slot.get(key)
        if slot is None:
            return None
        payload = self._block_file.read_slot(slot)
        if payload is None:  # pragma: no cover - slots are written before mapped
            return None
        block = np.frombuffer(payload, dtype=float).reshape(self._block_shape(key))
        self.reloads += 1
        obs.inc("metric.reloads")
        # Re-admit to the cache; the eviction this may trigger is a no-op
        # write (the evicted block is already on disk).
        self.cache.put(key, block)
        return block

    # -- row spill path --------------------------------------------------------

    def _load_row(self, i: int) -> Optional[np.ndarray]:
        """The stored full distance row of record *i*, or ``None``."""
        slot = self._row_slot.get(i)
        if slot is None:
            return None
        payload = self._row_file.read_slot(slot)
        if payload is None:  # pragma: no cover - slots are written before mapped
            return None
        self.reloads += 1
        obs.inc("metric.reloads")
        return np.frombuffer(payload, dtype=float)

    def _store_row(self, i: int, row: np.ndarray) -> None:
        if i in self._row_slot:
            return
        if self._row_file is None:
            self._row_file = BlockStorage.create(
                self.spill_dir / "rows.rblk", slot_size=self.n_points * 8
            )
        payload = np.ascontiguousarray(row, dtype=float).tobytes()
        self._row_slot[i] = self._row_file.append(payload)
        self.rows_stored += 1

    def distances_from(self, i: int, candidates: np.ndarray) -> np.ndarray:
        """Row-shaped distances, served from (and feeding) the row store.

        A stored row answers any candidate subset by fancy indexing — the
        values are bit-identical because every batchable distance reduces
        each element over the same contiguous ``axis=-1`` slice regardless
        of how requests are chunked.  A full sweep over a fresh row computes
        it once (the inherited chunked path) and stores it.
        """
        i = int(i)
        row = self._load_row(i)
        if row is not None:
            return row[candidates]
        out = super().distances_from(i, candidates)
        if len(candidates) == self.n_points and np.array_equal(
            candidates, np.arange(self.n_points)
        ):
            self._store_row(i, out)
        return out

    def pair_distances(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Paired distances, served from stored rows wherever one applies.

        Two row fast paths, in order:

        * **constant-record batches** — when every pair shares one record
          (the quadruplet oracle's "compare everything against the query"
          shape), the batch is a masked distance row: serve it from the
          stored row, materialising the row once the record's cumulative
          constant-batch demand reaches ``row_threshold`` pairs (enough to
          amortise the n evaluations the row costs);
        * **stored-anchor pairs** — any remaining pair whose left or right
          record already has a stored row (k-center objective evaluation:
          every point against its assigned center, whose row the greedy
          traversal computed) is answered from that row.

        Whatever is left falls through to the inherited block/chunk strategy
        backed by the spill file.  Rows are bit-identical to direct
        evaluation (same contiguous ``axis=-1`` reduction), so the split
        never changes a value.
        """
        m = len(i)
        if m:
            for const, other in ((i, j), (j, i)):
                anchor = int(const[0])
                if not (const == anchor).all():
                    continue
                row = self._load_row(anchor)
                if row is None:
                    # Demand is cumulative across batches: Count-Max re-asks
                    # the same anchor in ~sample_size/2-pair rounds for the
                    # whole tournament, so no single batch reaches the
                    # threshold but the anchor's total traffic dwarfs it.
                    demand = self._anchor_demand.get(anchor, 0) + m
                    if demand >= self.row_threshold:
                        row = super().distances_from(
                            anchor, np.arange(self.n_points)
                        )
                        self._store_row(anchor, row)
                        self._anchor_demand.pop(anchor, None)
                    else:
                        self._anchor_demand[anchor] = demand
                if row is not None:
                    return np.asarray(row[other], dtype=float)
                break  # constant but demand too low to justify the row yet
        if m and self._row_slot:
            stored = np.fromiter(self._row_slot, dtype=np.int64)
            out = np.empty(m, dtype=float)
            unresolved = np.ones(m, dtype=bool)
            for const, other in ((i, j), (j, i)):
                mask = unresolved & np.isin(const, stored)
                if not mask.any():
                    continue
                for anchor in np.unique(const[mask]):
                    row = self._load_row(int(anchor))
                    sel = mask & (const == anchor)
                    out[sel] = row[other[sel]]
                unresolved &= ~mask
            if not unresolved.all():
                if unresolved.any():
                    out[unresolved] = super().pair_distances(
                        i[unresolved], j[unresolved]
                    )
                return out
        return super().pair_distances(i, j)

    # -- lifecycle / observability --------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Inherited cache counters plus the spill/reload evidence."""
        stats = super().stats()
        stats["spills"] = self.spills
        stats["reloads"] = self.reloads
        stats["rows_stored"] = self.rows_stored
        stats["spill_bytes"] = self._block_file.size_bytes + (
            0 if self._row_file is None else self._row_file.size_bytes
        )
        return stats

    def close(self) -> None:
        """Close the spill files (and delete an owned temp spill directory)."""
        self.cache.on_evict = None
        self.cache.clear()
        self._block_file.close()
        if self._row_file is not None:
            self._row_file.close()
        if self._spill_finalizer is not None:
            self._spill_finalizer()
