"""Figure 4: crowd accuracy per distance-bucket pair (simulated user study).

The paper buckets record pairs by ground-truth distance, asks the crowd
``log n`` random quadruplet queries for every pair of buckets (each answered
by three workers, majority vote), and plots the per-bucket-pair accuracy as a
heat map.  Accuracy is ~0.5 on the diagonal and rises towards 1 off the
diagonal; caltech shows a sharp cut-off (adversarial-like) while amazon stays
noisy everywhere (probabilistic-like).

This module reproduces the measurement against the simulated crowd oracle:
the *output* is the measured accuracy matrix, the *input profile* is only the
per-query accuracy model, so the measurement still aggregates worker votes
and sampling noise exactly as the study did.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets.registry import load_dataset
from repro.experiments.base import ExperimentResult
from repro.oracles.counting import QueryCounter
from repro.oracles.crowd import BucketAccuracyProfile, CrowdQuadrupletOracle
from repro.rng import SeedLike, ensure_rng

#: Datasets measured in Figure 4 together with the profile regime they follow.
FIG4_DATASETS: Dict[str, str] = {"caltech": "adversarial", "amazon": "probabilistic"}


def _bucket_pairs(
    space, n_buckets: int, rng: np.random.Generator, per_bucket: int
) -> Dict[int, List[Tuple[int, int]]]:
    """Sample record pairs and group them by the distance bucket they fall into."""
    n = len(space)
    max_distance = 0.0
    probe = rng.choice(n, size=min(n, 200), replace=False)
    for i in probe:
        max_distance = max(max_distance, float(np.max(space.distances_from(int(i)))))
    width = max(1e-12, max_distance / n_buckets)
    buckets: Dict[int, List[Tuple[int, int]]] = {b: [] for b in range(n_buckets)}
    attempts = 0
    needed = per_bucket * n_buckets * 4
    while attempts < needed * 10 and any(len(v) < per_bucket for v in buckets.values()):
        i, j = rng.integers(0, n, size=2)
        attempts += 1
        if i == j:
            continue
        d = space.distance(int(i), int(j))
        bucket = min(n_buckets - 1, int(d / width))
        if len(buckets[bucket]) < per_bucket:
            buckets[bucket].append((int(i), int(j)))
    return {b: pairs for b, pairs in buckets.items() if pairs}


def run(
    n_points: Optional[int] = None,
    n_buckets: int = 8,
    queries_per_cell: Optional[int] = None,
    n_workers: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Measure crowd accuracy for every pair of distance buckets (Figure 4).

    Parameters
    ----------
    n_points:
        Records per dataset (defaults to the registry's scaled-down sizes).
    n_buckets:
        Number of distance buckets per dataset.
    queries_per_cell:
        Quadruplet queries per bucket pair (default ``log n`` as in the paper).
    n_workers:
        Simulated crowd workers per query (majority vote).
    seed:
        Seed for sampling and the crowd simulation.
    """
    rng = ensure_rng(seed)
    result = ExperimentResult(
        name="fig4_user_study",
        description="Crowd quadruplet-query accuracy per distance-bucket pair",
        params={
            "n_points": n_points,
            "n_buckets": n_buckets,
            "queries_per_cell": queries_per_cell,
            "n_workers": n_workers,
            "seed": seed,
        },
    )
    for dataset, regime in FIG4_DATASETS.items():
        space = load_dataset(dataset, n_points=n_points, seed=rng.integers(0, 2**31))
        n = len(space)
        per_cell = queries_per_cell or max(3, int(math.ceil(math.log(n))))
        max_distance = float(
            np.max([np.max(space.distances_from(i)) for i in range(0, n, max(1, n // 50))])
        )
        if regime == "adversarial":
            profile = BucketAccuracyProfile.adversarial_like(max_distance)
        else:
            profile = BucketAccuracyProfile.probabilistic_like(max_distance)
        oracle = CrowdQuadrupletOracle(
            space,
            profile,
            n_workers=n_workers,
            seed=rng.integers(0, 2**31),
            counter=QueryCounter(),
        )
        buckets = _bucket_pairs(space, n_buckets, rng, per_bucket=per_cell)
        for b_left, left_pairs in buckets.items():
            for b_right, right_pairs in buckets.items():
                count = min(len(left_pairs), len(right_pairs), per_cell)
                if count == 0:
                    continue
                correct = 0
                total = 0
                for idx in range(count):
                    a, b = left_pairs[idx]
                    c, d = right_pairs[(idx * 7 + 1) % len(right_pairs)]
                    if (a, b) == (c, d):
                        continue
                    answer = oracle.compare(a, b, c, d)
                    truth = space.distance(a, b) <= space.distance(c, d)
                    correct += int(answer == truth)
                    total += 1
                if total == 0:
                    continue
                result.rows.append(
                    {
                        "dataset": dataset,
                        "regime": regime,
                        "bucket_left": b_left,
                        "bucket_right": b_right,
                        "accuracy": correct / total,
                        "n_queries": total,
                    }
                )
    return result


def accuracy_matrix(result: ExperimentResult, dataset: str) -> np.ndarray:
    """Reshape a Figure 4 result into the heat-map matrix for one dataset."""
    rows = result.filter(dataset=dataset)
    if not rows:
        return np.zeros((0, 0))
    size = max(max(r["bucket_left"], r["bucket_right"]) for r in rows) + 1
    matrix = np.full((size, size), np.nan)
    for r in rows:
        matrix[r["bucket_left"], r["bucket_right"]] = r["accuracy"]
    return matrix


from repro.engine.spec import ExperimentSpec, register

SPEC = register(
    ExperimentSpec(
        name="fig4_user_study",
        runner=run,
        description="Crowd quadruplet-query accuracy per distance-bucket pair",
        paper_ref="Figure 4",
        key_columns=("dataset", "regime", "bucket_left", "bucket_right"),
        quick={"n_points": 150, "n_buckets": 5, "queries_per_cell": 4},
        defaults={"n_buckets": 8, "n_workers": 3},
    )
)
