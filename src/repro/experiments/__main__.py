"""Command-line entry point for the experiment engine.

Examples
--------
List the experiments with their paper references::

    python -m repro.experiments list

Run one experiment at smoke-test scale and print its table::

    python -m repro.experiments run fig6_kcenter --quick
    python -m repro.experiments run table1_fscore --seed 3 --csv

Sweep every experiment over 4 seeds on 4 worker processes, with on-disk
result caching (a repeated sweep is served from cache)::

    python -m repro.experiments sweep --quick --seeds 4 --jobs 4
    python -m repro.experiments sweep fig6_kcenter --seeds 8 --param n_points=100,200
    python -m repro.experiments clean-cache

The legacy spelling ``python -m repro.experiments fig6_kcenter --quick`` (no
subcommand) still works and behaves like ``run``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.engine import (
    ResultCache,
    aggregate_across_seeds,
    canonical_params,
    get_spec,
    iter_specs,
    parse_param_assignments,
    plan_sweep,
    run_sweep,
    spec_names,
)
from repro.exceptions import InvalidParameterError

SUBCOMMANDS = ("list", "run", "sweep", "clean-cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run, sweep and cache the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command")

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.add_argument("--verbose", action="store_true", help="include quick overrides")

    p_run = sub.add_parser("run", help="run one experiment once")
    p_run.add_argument("experiment", help="experiment name (see list)")
    p_run.add_argument("--quick", action="store_true", help="smoke-test settings")
    p_run.add_argument("--seed", type=int, default=0, help="random seed")
    p_run.add_argument("--csv", action="store_true", help="print CSV instead of a table")
    p_run.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one runner parameter (repeatable)",
    )
    p_run.add_argument(
        "--cached",
        action="store_true",
        help="serve from / store into the result cache",
    )
    p_run.add_argument("--cache-dir", default=None, help="cache directory")

    p_sweep = sub.add_parser("sweep", help="run a multi-experiment, multi-seed sweep")
    p_sweep.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all)",
    )
    p_sweep.add_argument("--quick", action="store_true", help="smoke-test settings")
    p_sweep.add_argument("--seeds", type=int, default=1, help="number of seeds")
    p_sweep.add_argument(
        "--seed-base", type=int, default=0, help="base seed the task seeds derive from"
    )
    p_sweep.add_argument("--jobs", type=int, default=1, help="worker processes")
    p_sweep.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=V1[,V2...]",
        help="sweep grid values for one parameter (repeatable)",
    )
    p_sweep.add_argument("--cache-dir", default=None, help="cache directory")
    p_sweep.add_argument("--no-cache", action="store_true", help="disable the result cache")
    p_sweep.add_argument(
        "--force", action="store_true", help="recompute even when cached"
    )
    p_sweep.add_argument("--csv", action="store_true", help="print CSV instead of tables")
    p_sweep.add_argument(
        "--no-aggregate",
        action="store_true",
        help="print per-task results instead of cross-seed mean/std tables",
    )
    p_sweep.add_argument("--quiet", action="store_true", help="no per-task progress lines")

    p_clean = sub.add_parser("clean-cache", help="delete cached results")
    p_clean.add_argument(
        "experiments", nargs="*", help="restrict to these experiments (default: all)"
    )
    p_clean.add_argument("--cache-dir", default=None, help="cache directory")

    return parser


def _normalize_argv(argv: Sequence[str]) -> List[str]:
    """Map the legacy interface onto the subcommand interface.

    ``--list`` becomes ``list``; a leading experiment name becomes
    ``run <name> ...``; no arguments lists the experiments.
    """
    argv = list(argv)
    if not argv:
        return ["list"]
    if "--list" in argv:
        return ["list"]
    first_positional = next((a for a in argv if not a.startswith("-")), None)
    if first_positional is not None and first_positional not in SUBCOMMANDS:
        return ["run", *argv]
    return argv


def _single_params(assignments: Sequence[str]) -> dict:
    """Parse ``--param`` overrides for `run` (one value per key)."""
    grid = parse_param_assignments(assignments)
    multi = sorted(k for k, v in grid.items() if len(v) != 1)
    if multi:
        raise InvalidParameterError(
            f"run takes a single value per --param; got multiple for: {', '.join(multi)}"
            " (use sweep for grids)"
        )
    return {k: v[0] for k, v in grid.items()}


def _cmd_list(args) -> int:
    for spec in iter_specs():
        print(f"{spec.name:22s} {spec.paper_ref:9s} {spec.description}")
        if args.verbose and spec.quick:
            quick = ", ".join(f"{k}={v}" for k, v in spec.quick.items())
            print(f"{'':22s} {'':9s} quick: {quick}")
    return 0


def _cmd_run(args) -> int:
    if args.experiment not in spec_names():
        print(f"unknown experiment {args.experiment!r}; use list", file=sys.stderr)
        return 2
    spec = get_spec(args.experiment)
    params = dict(spec.quick) if args.quick else {}
    params.update(_single_params(args.param))
    spec.validate_params(params)
    tasks = plan_sweep([spec.name], seeds=[args.seed], grid={k: [v] for k, v in params.items()})
    cache = ResultCache(args.cache_dir) if args.cached else None
    report = run_sweep(tasks, jobs=1, cache=cache)
    result = report.outcomes[0].result
    print(result.to_csv() if args.csv else result.to_table())
    if args.cached:
        print(f"# {report.summary()}", file=sys.stderr)
    return 0


def _cmd_sweep(args) -> int:
    names = args.experiments or None
    unknown = [n for n in (names or []) if n not in spec_names()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; use list", file=sys.stderr)
        return 2
    grid = parse_param_assignments(args.param)
    tasks = plan_sweep(
        names,
        n_seeds=args.seeds,
        base_seed=args.seed_base,
        grid=grid,
        quick=args.quick,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(outcome, done, total):
        if not args.quiet:
            origin = "cached" if outcome.cached else f"{outcome.elapsed_seconds:.1f}s"
            print(f"[{done}/{total}] {outcome.task.label()} ({origin})", file=sys.stderr)

    report = run_sweep(
        tasks, jobs=args.jobs, cache=cache, force=args.force, progress=progress
    )

    for name in report.experiments():
        # Aggregate per distinct parameter combination: only seed repeats of
        # the *same* params may pool into one mean/std, never grid values.
        param_groups: dict = {}
        for outcome in report.outcomes:
            if outcome.task.experiment != name:
                continue
            group_key = json.dumps(canonical_params(outcome.task.params), sort_keys=True)
            param_groups.setdefault(group_key, []).append(outcome)
        for group_key, outcomes in param_groups.items():
            results = [o.result for o in outcomes]
            if args.no_aggregate or len(results) == 1:
                shown = results
            else:
                shown = [
                    aggregate_across_seeds(
                        results,
                        key_columns=get_spec(name).key_columns,
                        name=f"{name}+agg",
                    )
                ]
            for result in shown:
                if args.csv:
                    print(result.to_csv())
                else:
                    header = f"== {result.name}: {result.description}"
                    if len(param_groups) > 1:
                        header += f"\n== params: {group_key}"
                    print(header)
                    print(result.to_table())
                    print()
    print(f"sweep: {report.summary()}", file=sys.stderr)
    return 0


def _cmd_clean_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    removed = 0
    for name in args.experiments or [None]:
        removed += cache.clear(name)
    print(f"clean-cache: removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {cache.root}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    parser = build_parser()
    args = parser.parse_args(_normalize_argv(argv))
    if args.command is None:
        parser.print_help()
        return 2
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "clean-cache": _cmd_clean_cache,
    }
    try:
        return handlers[args.command](args)
    except InvalidParameterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
