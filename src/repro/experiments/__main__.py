"""Command-line entry point for the experiment harness.

Examples
--------
List the experiments::

    python -m repro.experiments --list

Run one experiment with laptop-quick settings and print its table::

    python -m repro.experiments fig6_kcenter --quick
    python -m repro.experiments table1_fscore --seed 3
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS

#: Reduced settings per experiment used with ``--quick`` (smoke-test scale).
_QUICK_OVERRIDES = {
    "fig4_user_study": {"n_points": 150, "n_buckets": 5, "queries_per_cell": 4},
    "fig5_crowd_far_nn": {"n_points": 150, "n_queries": 2},
    "fig6_kcenter": {"n_points": 200, "k_values": (5, 10)},
    "fig7_hierarchical": {"n_points": 40},
    "fig8_farthest_noise": {"n_points": 200, "n_queries": 2},
    "fig9_nn_noise": {"n_points": 200, "n_queries": 2},
    "table1_fscore": {"n_points": 120},
    "table2_queries": {"n_points": 250, "k": 5, "linkage_points": 40},
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures on synthetic stand-in data.",
    )
    parser.add_argument("experiment", nargs="?", help="experiment name (see --list)")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--quick", action="store_true", help="use reduced smoke-test settings")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--csv", action="store_true", help="print CSV instead of a table")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:22s} {doc}")
        return 0

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; use --list", file=sys.stderr)
        return 2

    kwargs = dict(_QUICK_OVERRIDES.get(args.experiment, {})) if args.quick else {}
    kwargs["seed"] = args.seed
    result = EXPERIMENTS[args.experiment].run(**kwargs)
    print(result.to_csv() if args.csv else result.to_table())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
