"""Figure 8: farthest-point quality versus synthetic noise level on cities.

The paper sweeps adversarial noise ``mu in {0, 0.5, 1, 2}`` and probabilistic
noise ``p in {0, 0.1, 0.3}`` with a synthetically simulated oracle and plots
the true distance of the farthest point returned by Far, Tour2 and Samp
against the optimum (``TDist``).  The expected shape: Far stays within a
small factor of the optimum at every noise level, Tour2 matches Far at low
noise and degrades as noise grows, Samp is limited by whether its sample
contains a near-optimal point (it does not, on the skewed cities data).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets.registry import load_dataset
from repro.evaluation.ranks import normalized_distance
from repro.experiments.base import ExperimentResult
from repro.neighbors import (
    farthest_adversarial,
    farthest_probabilistic,
    farthest_samp,
    farthest_tour2,
)
from repro.oracles.counting import QueryCounter
from repro.oracles.noise import AdversarialNoise, ExactNoise, ProbabilisticNoise
from repro.oracles.quadruplet import DistanceQuadrupletOracle
from repro.rng import SeedLike, ensure_rng

DEFAULT_MU_VALUES = (0.0, 0.5, 1.0, 2.0)
DEFAULT_P_VALUES = (0.0, 0.1, 0.3)
METHODS = ("ours", "tour2", "samp")


def _make_oracle(space, noise_kind: str, level: float, seed) -> DistanceQuadrupletOracle:
    if level == 0.0:
        noise = ExactNoise()
    elif noise_kind == "adversarial":
        noise = AdversarialNoise(mu=level, seed=seed)
    else:
        noise = ProbabilisticNoise(p=level, seed=seed)
    return DistanceQuadrupletOracle(space, noise=noise, counter=QueryCounter())


def run(
    n_points: Optional[int] = None,
    dataset: str = "cities",
    mu_values: Sequence[float] = DEFAULT_MU_VALUES,
    p_values: Sequence[float] = DEFAULT_P_VALUES,
    n_queries: int = 5,
    task: str = "farthest",
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Sweep noise levels and report farthest-point quality for ours / Tour2 / Samp.

    The same routine also powers Figure 9 (nearest neighbour) via
    ``task="nearest"``, since the two figures differ only in the query
    direction.
    """
    from repro.neighbors import (  # local import avoids a cycle in __init__ ordering
        nearest_adversarial,
        nearest_probabilistic,
        nearest_samp,
        nearest_tour2,
    )

    rng = ensure_rng(seed)
    result = ExperimentResult(
        name=f"fig8_{task}_noise" if task == "farthest" else f"fig9_{task}_noise",
        description=f"{task} quality vs synthetic noise level on {dataset}",
        params={
            "n_points": n_points,
            "dataset": dataset,
            "mu_values": list(mu_values),
            "p_values": list(p_values),
            "n_queries": n_queries,
            "seed": seed,
        },
    )
    space = load_dataset(dataset, n_points=n_points, seed=rng.integers(0, 2**31))
    queries = rng.choice(len(space), size=min(n_queries, len(space)), replace=False)
    sweeps = [("adversarial", mu) for mu in mu_values] + [
        ("probabilistic", p) for p in p_values
    ]
    reference = "farthest" if task == "farthest" else "nearest"
    for noise_kind, level in sweeps:
        per_method = {m: [] for m in METHODS}
        for query in queries:
            query = int(query)
            oracle = _make_oracle(space, noise_kind, level, rng.integers(0, 2**31))
            call_seed = rng.integers(0, 2**31)
            if task == "farthest":
                if noise_kind == "adversarial":
                    ours = farthest_adversarial(oracle, query, seed=call_seed)
                else:
                    ours = farthest_probabilistic(oracle, query, space=space, seed=call_seed)
                tour2 = farthest_tour2(oracle, query, seed=call_seed)
                samp = farthest_samp(oracle, query, seed=call_seed)
            else:
                if noise_kind == "adversarial":
                    ours = nearest_adversarial(oracle, query, seed=call_seed)
                else:
                    ours = nearest_probabilistic(oracle, query, space=space, seed=call_seed)
                tour2 = nearest_tour2(oracle, query, seed=call_seed)
                samp = nearest_samp(oracle, query, seed=call_seed)
            per_method["ours"].append(
                normalized_distance(space, query, ours, reference=reference)
            )
            per_method["tour2"].append(
                normalized_distance(space, query, tour2, reference=reference)
            )
            per_method["samp"].append(
                normalized_distance(space, query, samp, reference=reference)
            )
        for method in METHODS:
            result.rows.append(
                {
                    "dataset": dataset,
                    "task": task,
                    "noise": noise_kind,
                    "level": level,
                    "method": method,
                    "normalized_distance": float(np.mean(per_method[method])),
                    "optimum": 1.0,
                    "n_queries_averaged": len(per_method[method]),
                }
            )
    return result


from repro.engine.spec import ExperimentSpec, register

SPEC = register(
    ExperimentSpec(
        name="fig8_farthest_noise",
        runner=run,
        description="Farthest-point quality vs synthetic noise level",
        paper_ref="Figure 8",
        key_columns=("dataset", "task", "noise", "level", "method"),
        quick={"n_points": 200, "n_queries": 2},
        defaults={
            "dataset": "cities",
            "mu_values": list(DEFAULT_MU_VALUES),
            "p_values": list(DEFAULT_P_VALUES),
            "n_queries": 5,
        },
    )
)
