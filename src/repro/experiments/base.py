"""Shared result container and table formatting for the experiment harness."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.serialization import json_safe

__all__ = ["ExperimentResult", "json_safe"]


@dataclass
class ExperimentResult:
    """Rows produced by one experiment, plus the parameters that produced them.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig6_kcenter"``).
    description:
        One-line summary of what the experiment measures.
    rows:
        List of dictionaries, one per reported data point; keys are column
        names.
    params:
        The parameters the experiment ran with (dataset sizes, seeds, noise
        levels, ...), recorded for reproducibility.
    """

    name: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)

    def columns(self) -> List[str]:
        """Union of all row keys, in first-appearance order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def filter(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows matching all the given column=value criteria."""
        return [
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in criteria.items())
        ]

    def column(self, name: str, **criteria: Any) -> List[Any]:
        """Values of one column across (optionally filtered) rows."""
        return [row[name] for row in self.filter(**criteria) if name in row]

    def to_table(self, max_rows: Optional[int] = None, float_format: str = "{:.3f}") -> str:
        """Plain-text table of the rows (what the CLI prints)."""
        columns = self.columns()
        if not columns:
            return f"{self.name}: (no rows)"
        rows = self.rows if max_rows is None else self.rows[:max_rows]

        def fmt(value: Any) -> str:
            # Missing keys and explicit None render as empty cells, matching
            # to_csv, so heterogeneous rows produce consistent output.
            if value is None:
                return ""
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        rendered = [[fmt(row.get(c)) for c in columns] for row in rows]
        widths = [
            max(len(columns[i]), *(len(r[i]) for r in rendered)) if rendered else len(columns[i])
            for i in range(len(columns))
        ]
        lines = [
            "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in rendered:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering of the rows.

        Missing keys and explicit ``None`` both render as empty cells, and
        the column order is the stable first-appearance order of
        :meth:`columns` — the same conventions as :meth:`to_table`.
        """
        columns = self.columns()
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: ("" if row.get(c) is None else row[c]) for c in columns})
        return buffer.getvalue()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of this result (see :func:`json_safe`)."""
        return {
            "name": self.name,
            "description": self.description,
            "rows": [json_safe(row) for row in self.rows],
            "params": json_safe(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from a :meth:`to_dict` payload."""
        return cls(
            name=payload["name"],
            description=payload.get("description", ""),
            rows=[dict(row) for row in payload.get("rows", [])],
            params=dict(payload.get("params", {})),
        )

    def summary(self, group_by: Sequence[str], value: str) -> List[Dict[str, Any]]:
        """Group rows by the given columns; report mean/std of the *value* column."""
        groups: Dict[tuple, List[float]] = {}
        for row in self.rows:
            key = tuple(row.get(c) for c in group_by)
            if value in row and isinstance(row[value], (int, float)):
                groups.setdefault(key, []).append(float(row[value]))
        out = []
        for key, values in groups.items():
            entry = {c: k for c, k in zip(group_by, key)}
            mean = sum(values) / len(values)
            entry[f"mean_{value}"] = mean
            entry[f"std_{value}"] = (
                sum((v - mean) ** 2 for v in values) / len(values)
            ) ** 0.5
            entry["n"] = len(values)
            out.append(entry)
        return out
