"""Table 2: running time and number of quadruplet comparisons on the dblp dataset.

The paper reports, for the largest dataset under adversarial noise
(``mu = 1``), the wall-clock time and the number of quadruplet comparisons
used by each technique for: farthest, nearest, k-center (k = 50), single
linkage and complete linkage.  Tour2 does not finish hierarchical clustering
(its closest-pair search is cubic), which the table marks as ``DNF``.

Our dblp stand-in is much smaller than 1.8M records, so the absolute numbers
differ; the *relationships* — ours slightly more comparisons than Tour2 for
farthest/nearest/k-center, Tour2 infeasible for linkage — are preserved.  A
row's ``time_seconds`` is measured on this machine and is not expected to
match the paper's C++ timings.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.baselines import hierarchical_samp, hierarchical_tour2, kcenter_samp, kcenter_tour2
from repro.datasets.registry import load_dataset
from repro.experiments.base import ExperimentResult
from repro.hierarchical import noisy_linkage
from repro.kcenter import kcenter_adversarial
from repro.neighbors import (
    farthest_adversarial,
    farthest_samp,
    farthest_tour2,
    nearest_adversarial,
    nearest_samp,
    nearest_tour2,
)
from repro.oracles.counting import QueryCounter
from repro.oracles.noise import AdversarialNoise
from repro.oracles.quadruplet import DistanceQuadrupletOracle
from repro.rng import SeedLike, ensure_rng

PROBLEMS = ("farthest", "nearest", "kcenter", "single_linkage", "complete_linkage")
METHODS = ("ours", "tour2", "samp")

#: Hierarchical clustering is quadratic in oracle queries; above this many
#: points the Tour2 variant (cubic closest-pair search) is marked DNF, as in
#: the paper.
TOUR2_LINKAGE_LIMIT = 200


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start


def run(
    n_points: Optional[int] = None,
    mu: float = 1.0,
    k: int = 10,
    linkage_points: int = 80,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Measure time and #comparisons for every problem / method pair of Table 2.

    Parameters
    ----------
    n_points:
        dblp stand-in size for farthest / nearest / k-center.
    mu:
        Adversarial noise level (1.0 in the paper).
    k:
        Number of k-center clusters (50 in the paper; scaled down by default).
    linkage_points:
        Number of records used for the (quadratic) linkage problems.
    seed:
        Seed controlling the dataset, noise and algorithms.
    """
    rng = ensure_rng(seed)
    result = ExperimentResult(
        name="table2_queries",
        description="Running time and #quadruplet comparisons on the dblp stand-in",
        params={
            "n_points": n_points,
            "mu": mu,
            "k": k,
            "linkage_points": linkage_points,
            "seed": seed,
        },
    )
    space = load_dataset("dblp", n_points=n_points, seed=rng.integers(0, 2**31))
    n = len(space)
    query = int(rng.integers(0, n))
    first_center = int(rng.integers(0, n))
    linkage_subset = list(rng.choice(n, size=min(linkage_points, n), replace=False))

    def fresh_oracle() -> DistanceQuadrupletOracle:
        return DistanceQuadrupletOracle(
            space,
            noise=AdversarialNoise(mu=mu, seed=rng.integers(0, 2**31)),
            counter=QueryCounter(),
        )

    runners: Dict[str, Dict[str, callable]] = {
        # n_iterations=1 matches the paper's experimental setting ("we set t = 1
        # in Algorithm 4"), which keeps the comparison count of Far/NN within a
        # small factor of Tour2's, as Table 2 reports.
        "farthest": {
            "ours": lambda o: farthest_adversarial(o, query, n_iterations=1, seed=0),
            "tour2": lambda o: farthest_tour2(o, query, seed=0),
            "samp": lambda o: farthest_samp(o, query, seed=0),
        },
        "nearest": {
            "ours": lambda o: nearest_adversarial(o, query, n_iterations=1, seed=0),
            "tour2": lambda o: nearest_tour2(o, query, seed=0),
            "samp": lambda o: nearest_samp(o, query, seed=0),
        },
        "kcenter": {
            "ours": lambda o: kcenter_adversarial(o, k, first_center=first_center, seed=0),
            "tour2": lambda o: kcenter_tour2(o, k, first_center=first_center, seed=0),
            "samp": lambda o: kcenter_samp(o, k, first_center=first_center, seed=0),
        },
        "single_linkage": {
            "ours": lambda o: noisy_linkage(o, "single", points=linkage_subset, seed=0),
            "tour2": lambda o: hierarchical_tour2(o, "single", points=linkage_subset, seed=0),
            "samp": lambda o: hierarchical_samp(o, "single", points=linkage_subset, seed=0),
        },
        "complete_linkage": {
            "ours": lambda o: noisy_linkage(o, "complete", points=linkage_subset, seed=0),
            "tour2": lambda o: hierarchical_tour2(o, "complete", points=linkage_subset, seed=0),
            "samp": lambda o: hierarchical_samp(o, "complete", points=linkage_subset, seed=0),
        },
    }

    for problem in PROBLEMS:
        for method in METHODS:
            is_linkage = problem.endswith("linkage")
            if is_linkage and method == "tour2" and len(linkage_subset) > TOUR2_LINKAGE_LIMIT:
                result.rows.append(
                    {
                        "problem": problem,
                        "method": method,
                        "time_seconds": None,
                        "n_comparisons": None,
                        "status": "DNF",
                    }
                )
                continue
            oracle = fresh_oracle()
            _, elapsed = _timed(runners[problem][method], oracle)
            result.rows.append(
                {
                    "problem": problem,
                    "method": method,
                    "time_seconds": elapsed,
                    "n_comparisons": oracle.counter.total_queries,
                    "counter_summary": oracle.counter.summary(),
                    "status": "ok",
                }
            )
    return result


from repro.engine.spec import ExperimentSpec, register

SPEC = register(
    ExperimentSpec(
        name="table2_queries",
        runner=run,
        description="Running time and #quadruplet comparisons on the dblp stand-in",
        paper_ref="Table 2",
        key_columns=("problem", "method", "status"),
        quick={"n_points": 250, "k": 5, "linkage_points": 40},
        defaults={"mu": 1.0, "k": 10, "linkage_points": 80},
    )
)
