"""Figure 7: hierarchical clustering quality under the (simulated) crowd oracle.

For single and complete linkage, the paper compares the average true distance
between the pairs of clusters merged at each iteration, normalised so that
the exact algorithm (``TDist``) is 1.  ``HC`` (our robust algorithm) should
stay close to 1, ``Samp`` and ``Tour2`` drift higher, and all methods look
similar on the low-noise monuments dataset.
"""

from __future__ import annotations

from typing import Dict, List, Optional


from repro.baselines import hierarchical_samp, hierarchical_tour2
from repro.datasets.registry import load_dataset
from repro.evaluation.merges import average_merge_distance
from repro.experiments.base import ExperimentResult
from repro.experiments.fig5_crowd_far_nn import FIG5_DATASETS, _make_crowd_oracle
from repro.hierarchical import exact_linkage, noisy_linkage
from repro.rng import SeedLike, ensure_rng

METHODS = ("hc", "tour2", "samp")
LINKAGES = ("single", "complete")


def run(
    n_points: int = 60,
    datasets: Optional[List[str]] = None,
    linkages=LINKAGES,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Average merge distance of HC / Tour2 / Samp, normalised by the exact algorithm.

    Parameters
    ----------
    n_points:
        Records per dataset (hierarchical clustering is quadratic, so the
        default is small).
    datasets:
        Subset of the Figure 7 datasets to run (default: all four).
    linkages:
        Which linkage objectives to evaluate.
    seed:
        Seed controlling datasets, oracles and algorithm randomisation.
    """
    rng = ensure_rng(seed)
    selected = datasets or list(FIG5_DATASETS)
    result = ExperimentResult(
        name="fig7_hierarchical",
        description="Average merged-cluster distance (normalised by TDist) per linkage",
        params={"n_points": n_points, "datasets": selected, "linkages": list(linkages), "seed": seed},
    )
    for dataset in selected:
        regime = FIG5_DATASETS[dataset]
        space = load_dataset(dataset, n_points=n_points, seed=rng.integers(0, 2**31))
        for linkage in linkages:
            exact = exact_linkage(space, linkage=linkage)
            exact_avg = average_merge_distance(exact, space, linkage=linkage)
            per_method: Dict[str, float] = {}
            oracle = _make_crowd_oracle(space, regime, rng.integers(0, 2**31))
            hc = noisy_linkage(
                oracle, linkage=linkage, space=space, seed=rng.integers(0, 2**31)
            )
            per_method["hc"] = average_merge_distance(hc, space, linkage=linkage)

            oracle_t2 = _make_crowd_oracle(space, regime, rng.integers(0, 2**31))
            t2 = hierarchical_tour2(
                oracle_t2, linkage=linkage, space=space, seed=rng.integers(0, 2**31)
            )
            per_method["tour2"] = average_merge_distance(t2, space, linkage=linkage)

            oracle_samp = _make_crowd_oracle(space, regime, rng.integers(0, 2**31))
            sp = hierarchical_samp(
                oracle_samp, linkage=linkage, space=space, seed=rng.integers(0, 2**31)
            )
            per_method["samp"] = average_merge_distance(sp, space, linkage=linkage)

            for method in METHODS:
                value = per_method[method]
                result.rows.append(
                    {
                        "dataset": dataset,
                        "linkage": linkage,
                        "method": method,
                        "regime": regime,
                        "avg_merge_distance": value,
                        "normalized_vs_tdist": (value / exact_avg) if exact_avg > 0 else 1.0,
                    }
                )
            result.rows.append(
                {
                    "dataset": dataset,
                    "linkage": linkage,
                    "method": "tdist",
                    "regime": regime,
                    "avg_merge_distance": exact_avg,
                    "normalized_vs_tdist": 1.0,
                }
            )
    return result


from repro.engine.spec import ExperimentSpec, register

SPEC = register(
    ExperimentSpec(
        name="fig7_hierarchical",
        runner=run,
        description="Average merged-cluster distance (normalised by TDist) per linkage",
        paper_ref="Figure 7",
        key_columns=("dataset", "linkage", "method", "regime"),
        quick={"n_points": 40},
        defaults={"n_points": 60, "linkages": list(LINKAGES)},
    )
)
