"""Figure 6: k-center objective versus k under adversarial and probabilistic noise.

The paper sweeps ``k`` on the cities and dblp datasets, under adversarial
noise (``mu = 1`` for cities, ``mu = 0.5`` for dblp) and probabilistic noise
(``p = 0.1``), and plots the k-center objective (maximum cluster radius) of
our algorithm (``kC``), the Tour2 and Samp baselines, and the noise-free
greedy (``TDist``).  The expected shape: kC stays close to TDist for every k
and noise model, Tour2 is comparable under adversarial noise but degrades
under probabilistic noise, Samp is consistently worse.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines import kcenter_samp, kcenter_tour2
from repro.datasets.registry import load_dataset
from repro.experiments.base import ExperimentResult
from repro.kcenter import (
    greedy_kcenter_exact,
    kcenter_adversarial,
    kcenter_objective,
    kcenter_probabilistic,
)
from repro.oracles.counting import QueryCounter
from repro.oracles.noise import AdversarialNoise, ProbabilisticNoise
from repro.oracles.quadruplet import DistanceQuadrupletOracle
from repro.rng import SeedLike, ensure_rng

#: The four panels of Figure 6: (dataset, noise kind, noise level).
FIG6_PANELS = (
    ("cities", "adversarial", 1.0),
    ("dblp", "adversarial", 0.5),
    ("cities", "probabilistic", 0.1),
    ("dblp", "probabilistic", 0.1),
)

DEFAULT_K_VALUES = (5, 10, 20, 40)


def _make_oracle(space, noise_kind: str, level: float, seed) -> DistanceQuadrupletOracle:
    if noise_kind == "adversarial":
        noise = AdversarialNoise(mu=level, seed=seed)
    else:
        noise = ProbabilisticNoise(p=level, seed=seed)
    return DistanceQuadrupletOracle(space, noise=noise, counter=QueryCounter())


def run(
    n_points: Optional[int] = None,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    panels=FIG6_PANELS,
    min_cluster_size: Optional[int] = None,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Sweep k and report the k-center objective of kC / Tour2 / Samp / TDist.

    Parameters
    ----------
    n_points:
        Records per dataset (defaults to the registry's scaled-down sizes).
    k_values:
        The k sweep (the paper uses 5..100; the scaled default is 5..40).
    panels:
        The (dataset, noise kind, level) panels to run.
    min_cluster_size:
        ``m`` passed to the probabilistic algorithm (default ``n / (4 k)``).
    seed:
        Seed controlling datasets, noise and algorithm randomisation.
    """
    rng = ensure_rng(seed)
    result = ExperimentResult(
        name="fig6_kcenter",
        description="k-center objective vs k under adversarial / probabilistic noise",
        params={
            "n_points": n_points,
            "k_values": list(k_values),
            "panels": [list(p) for p in panels],
            "seed": seed,
        },
    )
    for dataset, noise_kind, level in panels:
        space = load_dataset(dataset, n_points=n_points, seed=rng.integers(0, 2**31))
        n = len(space)
        for k in k_values:
            if k > n:
                continue
            first_center = int(rng.integers(0, n))
            exact = greedy_kcenter_exact(space, k, first_center=first_center)
            objectives: Dict[str, float] = {"tdist": kcenter_objective(space, exact)}
            queries: Dict[str, int] = {"tdist": 0}

            # Our algorithm for the matching noise model.
            oracle = _make_oracle(space, noise_kind, level, rng.integers(0, 2**31))
            if noise_kind == "adversarial":
                ours = kcenter_adversarial(
                    oracle, k, first_center=first_center, seed=rng.integers(0, 2**31)
                )
            else:
                m = min_cluster_size or max(4, n // (4 * k))
                ours = kcenter_probabilistic(
                    oracle,
                    k,
                    min_cluster_size=m,
                    first_center=first_center,
                    seed=rng.integers(0, 2**31),
                )
            objectives["kc"] = kcenter_objective(space, ours)
            queries["kc"] = ours.n_queries

            oracle_t2 = _make_oracle(space, noise_kind, level, rng.integers(0, 2**31))
            tour2 = kcenter_tour2(
                oracle_t2, k, first_center=first_center, seed=rng.integers(0, 2**31)
            )
            objectives["tour2"] = kcenter_objective(space, tour2)
            queries["tour2"] = tour2.n_queries

            oracle_samp = _make_oracle(space, noise_kind, level, rng.integers(0, 2**31))
            samp = kcenter_samp(
                oracle_samp, k, first_center=first_center, seed=rng.integers(0, 2**31)
            )
            objectives["samp"] = kcenter_objective(space, samp)
            queries["samp"] = samp.n_queries

            for method in ("kc", "tour2", "samp", "tdist"):
                result.rows.append(
                    {
                        "dataset": dataset,
                        "noise": noise_kind,
                        "level": level,
                        "k": k,
                        "method": method,
                        "objective": objectives[method],
                        "objective_vs_tdist": (
                            objectives[method] / objectives["tdist"]
                            if objectives["tdist"] > 0
                            else 1.0
                        ),
                        "n_queries": queries[method],
                    }
                )
    return result


from repro.engine.spec import ExperimentSpec, register

SPEC = register(
    ExperimentSpec(
        name="fig6_kcenter",
        runner=run,
        description="k-center objective vs k under adversarial / probabilistic noise",
        paper_ref="Figure 6",
        key_columns=("dataset", "noise", "level", "k", "method"),
        quick={"n_points": 200, "k_values": [5, 10]},
        defaults={"k_values": list(DEFAULT_K_VALUES), "panels": [list(p) for p in FIG6_PANELS]},
    )
)
