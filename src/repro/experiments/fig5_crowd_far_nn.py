"""Figure 5: farthest / nearest-neighbour quality under the (simulated) crowd oracle.

For each dataset the paper reports the true distance of the point returned by
each technique (Far / NN, Tour2, Samp), normalised by the optimal distance
(``TDist``): higher is better for the farthest query, lower is better for the
nearest-neighbour query.  The expected shape is that Far/NN track TDist
closely on every dataset, Tour2 beats Samp on cities (skewed distances, a
unique optimum) but not on the taxonomy datasets, and Samp does poorly on NN.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.datasets.registry import load_dataset
from repro.experiments.base import ExperimentResult
from repro.evaluation.ranks import normalized_distance
from repro.neighbors import (
    farthest_adversarial,
    farthest_probabilistic,
    farthest_samp,
    farthest_tour2,
    nearest_adversarial,
    nearest_probabilistic,
    nearest_samp,
    nearest_tour2,
)
from repro.oracles.counting import QueryCounter
from repro.oracles.crowd import BucketAccuracyProfile, CrowdQuadrupletOracle
from repro.rng import SeedLike, ensure_rng

#: Datasets of Figure 5 and which noise regime (hence which of our algorithms)
#: the user-study findings of Section 6.2 say they follow.
FIG5_DATASETS: Dict[str, str] = {
    "cities": "adversarial",
    "caltech": "adversarial",
    "monuments": "adversarial",
    "amazon": "probabilistic",
}

METHODS = ("ours", "tour2", "samp")


def _make_crowd_oracle(space, regime: str, seed) -> CrowdQuadrupletOracle:
    max_distance = float(
        np.max([np.max(space.distances_from(i)) for i in range(0, len(space), max(1, len(space) // 50))])
    )
    if regime == "adversarial":
        profile = BucketAccuracyProfile.adversarial_like(max_distance)
    else:
        profile = BucketAccuracyProfile.probabilistic_like(max_distance)
    return CrowdQuadrupletOracle(space, profile, n_workers=3, seed=seed, counter=QueryCounter())


def run(
    n_points: Optional[int] = None,
    n_queries: int = 5,
    datasets: Optional[List[str]] = None,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Measure farthest and NN quality for Far/NN, Tour2 and Samp under the crowd oracle.

    Parameters
    ----------
    n_points:
        Records per dataset (defaults to the registry's scaled-down sizes).
    n_queries:
        Number of random query records averaged per dataset.
    datasets:
        Subset of datasets to run (default: all four of Figure 5).
    seed:
        Seed controlling datasets, oracles and query selection.
    """
    rng = ensure_rng(seed)
    selected = datasets or list(FIG5_DATASETS)
    result = ExperimentResult(
        name="fig5_crowd_far_nn",
        description="Farthest/NN true distance (normalised by optimum) under the crowd oracle",
        params={"n_points": n_points, "n_queries": n_queries, "seed": seed, "datasets": selected},
    )
    for dataset in selected:
        regime = FIG5_DATASETS[dataset]
        space = load_dataset(dataset, n_points=n_points, seed=rng.integers(0, 2**31))
        oracle = _make_crowd_oracle(space, regime, rng.integers(0, 2**31))
        queries = rng.choice(len(space), size=min(n_queries, len(space)), replace=False)
        for task in ("farthest", "nearest"):
            per_method: Dict[str, List[float]] = {m: [] for m in METHODS}
            for query in queries:
                query = int(query)
                call_seed = rng.integers(0, 2**31)
                if task == "farthest":
                    if regime == "adversarial":
                        ours = farthest_adversarial(oracle, query, seed=call_seed)
                    else:
                        ours = farthest_probabilistic(oracle, query, space=space, seed=call_seed)
                    tour2 = farthest_tour2(oracle, query, seed=call_seed)
                    samp = farthest_samp(oracle, query, seed=call_seed)
                    reference = "farthest"
                else:
                    if regime == "adversarial":
                        ours = nearest_adversarial(oracle, query, seed=call_seed)
                    else:
                        ours = nearest_probabilistic(oracle, query, space=space, seed=call_seed)
                    tour2 = nearest_tour2(oracle, query, seed=call_seed)
                    samp = nearest_samp(oracle, query, seed=call_seed)
                    reference = "nearest"
                per_method["ours"].append(
                    normalized_distance(space, query, ours, reference=reference)
                )
                per_method["tour2"].append(
                    normalized_distance(space, query, tour2, reference=reference)
                )
                per_method["samp"].append(
                    normalized_distance(space, query, samp, reference=reference)
                )
            for method in METHODS:
                values = per_method[method]
                result.rows.append(
                    {
                        "dataset": dataset,
                        "task": task,
                        "method": method,
                        "regime": regime,
                        "normalized_distance": float(np.mean(values)),
                        "optimum": 1.0,
                        "n_queries_averaged": len(values),
                    }
                )
    return result


from repro.engine.spec import ExperimentSpec, register

SPEC = register(
    ExperimentSpec(
        name="fig5_crowd_far_nn",
        runner=run,
        description="Farthest/NN true distance (normalised by optimum) under the crowd oracle",
        paper_ref="Figure 5",
        key_columns=("dataset", "task", "method", "regime"),
        quick={"n_points": 150, "n_queries": 2},
        defaults={"n_queries": 5},
    )
)
