"""Figure 9: nearest-neighbour quality versus synthetic noise level on cities.

Identical sweep to Figure 8 but for the nearest-neighbour query (lower is
better).  The paper omits Samp from the plot because its returned points are
far worse than everything else; the rows here include it so that conclusion
can be verified, and drop it from the headline comparison by filtering.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments import fig8_farthest_noise
from repro.experiments.base import ExperimentResult
from repro.rng import SeedLike

DEFAULT_MU_VALUES = fig8_farthest_noise.DEFAULT_MU_VALUES
DEFAULT_P_VALUES = fig8_farthest_noise.DEFAULT_P_VALUES


def run(
    n_points: Optional[int] = None,
    dataset: str = "cities",
    mu_values: Sequence[float] = DEFAULT_MU_VALUES,
    p_values: Sequence[float] = DEFAULT_P_VALUES,
    n_queries: int = 5,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Sweep noise levels and report nearest-neighbour quality (Figure 9)."""
    return fig8_farthest_noise.run(
        n_points=n_points,
        dataset=dataset,
        mu_values=mu_values,
        p_values=p_values,
        n_queries=n_queries,
        task="nearest",
        seed=seed,
    )


from repro.engine.spec import ExperimentSpec, register

SPEC = register(
    ExperimentSpec(
        name="fig9_nn_noise",
        runner=run,
        description="Nearest-neighbour quality vs synthetic noise level",
        paper_ref="Figure 9",
        key_columns=("dataset", "task", "noise", "level", "method"),
        quick={"n_points": 200, "n_queries": 2},
        defaults={
            "dataset": "cities",
            "mu_values": list(DEFAULT_MU_VALUES),
            "p_values": list(DEFAULT_P_VALUES),
            "n_queries": 5,
        },
    )
)
