"""Experiment harness regenerating every table and figure of the paper's evaluation.

Each module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.base.ExperimentResult` and registers an
:class:`~repro.engine.spec.ExperimentSpec` describing itself (paper
reference, smoke-test overrides, aggregation key columns).  The engine
(:mod:`repro.engine`) plans multi-seed sweeps over these specs, runs them
across processes and caches results on disk.

Run experiments from the command line::

    python -m repro.experiments run fig6_kcenter --quick
    python -m repro.experiments sweep --quick --seeds 4 --jobs 4
"""

import sys

from repro.experiments import (  # noqa: F401  (imports register the specs)
    fig4_user_study,
    fig5_crowd_far_nn,
    fig6_kcenter_objective,
    fig7_hierarchical,
    fig8_farthest_noise,
    fig9_nn_noise,
    table1_fscore,
    table2_queries,
)
from repro.engine.spec import iter_specs
from repro.experiments.base import ExperimentResult

#: Name -> module mapping derived from the spec registry (legacy interface;
#: new code should use :func:`repro.engine.get_spec` instead).
EXPERIMENTS = {spec.name: sys.modules[spec.module] for spec in iter_specs()}

__all__ = ["ExperimentResult", "EXPERIMENTS"]
