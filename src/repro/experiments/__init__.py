"""Experiment harness regenerating every table and figure of the paper's evaluation.

Each module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.base.ExperimentResult` whose rows mirror the
series / table rows the paper reports.  Dataset sizes default to
laptop-friendly values (the paper's absolute sizes are scaled down); pass
larger ``n_points`` for closer-to-paper runs.

Run any experiment from the command line::

    python -m repro.experiments fig6_kcenter --quick
"""

from repro.experiments import (
    fig4_user_study,
    fig5_crowd_far_nn,
    fig6_kcenter_objective,
    fig7_hierarchical,
    fig8_farthest_noise,
    fig9_nn_noise,
    table1_fscore,
    table2_queries,
)
from repro.experiments.base import ExperimentResult

EXPERIMENTS = {
    "fig4_user_study": fig4_user_study,
    "fig5_crowd_far_nn": fig5_crowd_far_nn,
    "fig6_kcenter": fig6_kcenter_objective,
    "fig7_hierarchical": fig7_hierarchical,
    "fig8_farthest_noise": fig8_farthest_noise,
    "fig9_nn_noise": fig9_nn_noise,
    "table1_fscore": table1_fscore,
    "table2_queries": table2_queries,
}

__all__ = ["ExperimentResult", "EXPERIMENTS"]
