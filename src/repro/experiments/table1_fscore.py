"""Table 1: F-score of k-center clusterings against ground-truth clusters.

The paper reports the pairwise F-score of the clusters produced by kC (ours),
Tour2, Samp and the pairwise optimal-cluster-query baseline Oq on the three
datasets with known ground-truth clusters.  Expected shape: kC above 0.9
everywhere, Tour2/Samp noticeably lower (especially on amazon), Oq much lower
because its recall collapses.
"""

from __future__ import annotations

from typing import Optional, Tuple


from repro.baselines import kcenter_samp, kcenter_tour2, oq_clustering
from repro.datasets.registry import DEFAULT_SIZES
from repro.datasets.taxonomy import make_taxonomy_space
from repro.evaluation.fscore import pairwise_fscore
from repro.experiments.base import ExperimentResult
from repro.experiments.fig5_crowd_far_nn import FIG5_DATASETS, _make_crowd_oracle
from repro.kcenter import kcenter_adversarial, kcenter_probabilistic
from repro.oracles.quadruplet import SameClusterOracle
from repro.rng import SeedLike, ensure_rng

#: (dataset, k) rows of Table 1.
TABLE1_ROWS: Tuple[Tuple[str, int], ...] = (
    ("caltech", 10),
    ("caltech", 15),
    ("caltech", 20),
    ("monuments", 5),
    ("amazon", 7),
    ("amazon", 14),
)

METHODS = ("kc", "tour2", "samp", "oq")


def _make_ground_truth_space(dataset: str, k: int, n_points: Optional[int], seed):
    """Synthetic stand-in with exactly *k* ground-truth clusters.

    The paper evaluates each (dataset, k) row against optimal clusters "from
    the original source" at the granularity matching k, so the stand-in is
    regenerated with k categories per row; the amazon rows keep the
    overlapping, noisy-category geometry of the probabilistic regime.
    """
    if n_points is None:
        n_points = DEFAULT_SIZES.get(dataset, 200)
    k = min(k, n_points)
    if dataset == "amazon":
        return make_taxonomy_space(
            n_points, n_categories=k, within_std=0.6, level_scale=2.0, overlap=0.25, seed=seed
        )
    if dataset == "monuments":
        return make_taxonomy_space(
            n_points, n_categories=k, within_std=0.15, level_scale=4.0, seed=seed
        )
    return make_taxonomy_space(
        n_points, n_categories=k, within_std=0.25, level_scale=3.0, seed=seed
    )


def run(
    n_points: Optional[int] = None,
    rows: Tuple[Tuple[str, int], ...] = TABLE1_ROWS,
    oq_max_queries: int = 150,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Compute Table 1: F-score per (dataset, k) for kC / Tour2 / Samp / Oq.

    Parameters
    ----------
    n_points:
        Records per dataset (defaults to the registry's scaled-down sizes).
    rows:
        The (dataset, k) combinations to evaluate.
    oq_max_queries:
        Pairwise-query budget given to the Oq baseline (150 in the paper).
    seed:
        Seed controlling datasets, oracles and algorithms.
    """
    rng = ensure_rng(seed)
    result = ExperimentResult(
        name="table1_fscore",
        description="Pairwise F-score of k-center clusterings vs ground truth",
        params={"n_points": n_points, "rows": [list(r) for r in rows], "seed": seed},
    )
    for dataset, k in rows:
        regime = FIG5_DATASETS[dataset]
        space = _make_ground_truth_space(dataset, k, n_points, rng.integers(0, 2**31))
        truth = space.labels
        if truth is None:
            continue
        n = len(space)
        first_center = int(rng.integers(0, n))
        scores = {}

        oracle = _make_crowd_oracle(space, regime, rng.integers(0, 2**31))
        if regime == "adversarial":
            ours = kcenter_adversarial(
                oracle, k, first_center=first_center, seed=rng.integers(0, 2**31)
            )
        else:
            ours = kcenter_probabilistic(
                oracle,
                k,
                min_cluster_size=max(4, n // (4 * k)),
                first_center=first_center,
                seed=rng.integers(0, 2**31),
            )
        scores["kc"] = pairwise_fscore(ours.labels(n), truth)

        oracle_t2 = _make_crowd_oracle(space, regime, rng.integers(0, 2**31))
        tour2 = kcenter_tour2(
            oracle_t2, k, first_center=first_center, seed=rng.integers(0, 2**31)
        )
        scores["tour2"] = pairwise_fscore(tour2.labels(n), truth)

        oracle_samp = _make_crowd_oracle(space, regime, rng.integers(0, 2**31))
        samp = kcenter_samp(
            oracle_samp, k, first_center=first_center, seed=rng.integers(0, 2**31)
        )
        scores["samp"] = pairwise_fscore(samp.labels(n), truth)

        same_cluster = SameClusterOracle(
            truth,
            false_negative_rate=0.5,
            false_positive_rate=0.05,
            seed=rng.integers(0, 2**31),
        )
        oq_labels = oq_clustering(
            same_cluster, n_points=n, max_queries=oq_max_queries, seed=rng.integers(0, 2**31)
        )
        scores["oq"] = pairwise_fscore(oq_labels, truth)

        for method in METHODS:
            result.rows.append(
                {
                    "dataset": dataset,
                    "k": k,
                    "method": method,
                    "fscore": float(scores[method]),
                }
            )
    return result


from repro.engine.spec import ExperimentSpec, register

SPEC = register(
    ExperimentSpec(
        name="table1_fscore",
        runner=run,
        description="Pairwise F-score of k-center clusterings vs ground truth",
        paper_ref="Table 1",
        key_columns=("dataset", "k", "method"),
        quick={"n_points": 120},
        defaults={"rows": [list(r) for r in TABLE1_ROWS], "oq_max_queries": 150},
    )
)
