"""k-center clustering under persistent probabilistic noise (Algorithm 7 of the paper).

A single quadruplet answer is wrong with constant probability and cannot be
re-asked, so the greedy loop is rebuilt around per-cluster **cores**: small
sets of points that are, with high probability, genuinely close to their
center.  Cores make every later comparison robust by aggregation:

* **Phase 1 (sampled points).**  Each point joins a sample ``V~`` with
  probability ``gamma * log(n / delta) / m`` (``m`` = smallest optimal
  cluster size), so every optimal cluster contributes ``Theta(log(n/delta))``
  sampled points.  The greedy loop then runs on ``V~`` only:

  - ``identify_core`` (Algorithm 9) scores each member of a cluster by how
    often the oracle says it is closer to the center than other members, and
    keeps the top scorers as the core ``R``.
  - ``Assign`` (Algorithm 8) moves a point ``u`` from cluster ``C(s_j)`` to a
    new center ``s_i`` when ``ACount(u, s_i, s_j)`` — the number of core
    members of ``s_j`` the oracle believes are farther from ``u`` than
    ``s_i`` is — exceeds ``0.3 |R(s_j)|``.
  - ``Approx-Farthest`` finds the next center with Max-Adv where each
    comparison is answered robustly by ``cluster_comp`` (Algorithm 10),
    aggregating quadruplet queries over the two cores.

* **Phase 2 (remaining points).**  ``Assign-Final`` walks each unsampled
  point through the centers in selection order, moving it whenever the
  ACount test against the current cluster's core passes.

When optimal clusters have size ``Omega(log^3(n/delta)/delta)`` the result is
an ``O(1)`` approximation with ``O(n k log(n/delta) + (n/m)^2 k log^2(n/delta))``
queries (Theorem 4.4).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.exceptions import EmptyInputError, InvalidParameterError
from repro.kcenter.objective import ClusteringResult
from repro.maximum.adversarial import max_adversarial
from repro.oracles.base import BaseQuadrupletOracle, FunctionComparisonOracle
from repro.rng import SeedLike, ensure_rng

#: Decision threshold used by the ClusterComp comparison test (0.3 in the paper).
THRESHOLD_FRACTION = 0.3

#: Decision threshold for the ACount *move* tests in Assign / Assign-Final.
#: The paper uses 0.3 with cores of size Theta(log(n/delta)), where the
#: one-sided concentration bound of Lemma 11.2 is tight enough; at the small
#: core sizes used on laptop-scale data a symmetric threshold halfway between
#: the error rate p (<= 0.4) and 1 - p is far more robust, so the library
#: defaults to 0.5 (callers can restore the paper's constant per run).
ASSIGN_THRESHOLD_FRACTION = 0.5


def identify_core(
    oracle: BaseQuadrupletOracle,
    members: Sequence[int],
    center: int,
    core_size: int,
    prune_fraction: float = 0.25,
) -> List[int]:
    """Identify-Core (Algorithm 9): the *core_size* members closest to *center*.

    Each member ``u`` is scored by the number of members ``x`` for which the
    oracle answers that ``x`` is **not** closer to the center than ``u``
    (``O(s_i, x, s_i, u) == No``); the highest scorers are returned.  The
    center itself is always part of its own core.

    Members whose score falls below ``prune_fraction`` of the maximum
    attainable score are dropped even if the requested core size has not been
    reached: a small cluster that accidentally absorbed a far-away point
    would otherwise put that point into its core, and every later core-based
    vote (ClusterComp, the final assignment duels) would inherit the error.
    """
    members = [int(u) for u in members]
    center = int(center)
    if core_size < 1:
        raise InvalidParameterError(f"core_size must be >= 1, got {core_size}")
    if not 0.0 <= prune_fraction < 1.0:
        raise InvalidParameterError("prune_fraction must be in [0, 1)")
    others = [u for u in members if u != center]
    scores: Dict[int, int] = {}
    if others:
        # All ordered (u, x) pairs, x != u, scored in one batched round.
        arr = np.asarray(others, dtype=np.int64)
        m = len(arr)
        u_pos = np.repeat(np.arange(m), m)
        x_pos = np.tile(np.arange(m), m)
        # Filter self-pairs by value, like the scalar loop did, so duplicated
        # member ids don't issue queries the scalar path would have skipped.
        keep = arr[u_pos] != arr[x_pos]
        u_pos, x_pos = u_pos[keep], x_pos[keep]
        c = np.full(len(u_pos), center, dtype=np.int64)
        # "x is NOT closer to the center than u" scores a point for u.
        answers = oracle.compare_batch(c, arr[x_pos], c, arr[u_pos])
        pos_scores = np.zeros(m, dtype=np.int64)
        np.add.at(pos_scores, u_pos[~answers], 1)
        scores = {int(arr[pos]): int(pos_scores[pos]) for pos in range(m)}
    cutoff = prune_fraction * max(0, len(others) - 1)
    ranked = sorted(others, key=lambda u: -scores[u])
    kept = [u for u in ranked if scores[u] >= cutoff or len(others) <= 1]
    core = [center] + kept[: max(0, core_size - 1)]
    return core


def acount(
    oracle: BaseQuadrupletOracle,
    point: int,
    new_center: int,
    current_core: Sequence[int],
) -> int:
    """ACount (Algorithm 8): #core members judged farther from *point* than *new_center*."""
    point = int(point)
    new_center = int(new_center)
    xs = np.asarray([int(x) for x in current_core if int(x) != point], dtype=np.int64)
    if len(xs) == 0:
        return 0
    # Yes means d(point, new_center) <= d(point, x); one batched round.
    answers = oracle.compare_batch(
        np.full(len(xs), point, dtype=np.int64),
        np.full(len(xs), new_center, dtype=np.int64),
        np.full(len(xs), point, dtype=np.int64),
        xs,
    )
    return int(np.count_nonzero(answers))


def core_duel(
    oracle: BaseQuadrupletOracle,
    point: int,
    core_a: Sequence[int],
    core_b: Sequence[int],
    threshold_fraction: float = 0.5,
) -> bool:
    """Robust vote: is *point* closer to the cluster with core *core_a* than to *core_b*?

    Aggregates ``O(point, x, point, y)`` over all anchor pairs ``x in core_a``,
    ``y in core_b`` and answers True when at least *threshold_fraction* of the
    votes say the point is closer to ``core_a``'s side.  This is the
    assignment-flavoured analogue of ClusterComp: because every vote is an
    independent persistent query, the error probability decays exponentially
    in ``|core_a| * |core_b|``, which is what makes the final assignment safe
    even though the k-center objective is a maximum over points.
    """
    point = int(point)
    left = [int(x) for x in core_a if int(x) != point]
    right = [int(y) for y in core_b if int(y) != point]
    if not left or not right:
        # Degenerate cores: fall back to a single direct query between the
        # first representatives.
        a = left[0] if left else int(core_a[0])
        b = right[0] if right else int(core_b[0])
        return oracle.compare(point, a, point, b)
    xs = np.repeat(np.asarray(left, dtype=np.int64), len(right))
    ys = np.tile(np.asarray(right, dtype=np.int64), len(left))
    p = np.full(len(xs), point, dtype=np.int64)
    votes = int(np.count_nonzero(oracle.compare_batch(p, xs, p, ys)))
    return votes >= threshold_fraction * len(left) * len(right)


def cluster_comp(
    oracle: BaseQuadrupletOracle,
    v_i: int,
    s_i: int,
    v_j: int,
    s_j: int,
    cores: Dict[int, List[int]],
    subset_cores: Dict[int, List[int]],
    threshold_fraction: float = THRESHOLD_FRACTION,
) -> bool:
    """ClusterComp (Algorithm 10): robust answer to "is d(v_i, s_i) <= d(v_j, s_j)?".

    For two points in the same cluster the full core is used as anchors; for
    points in different clusters the cross product of the two (sqrt-sized)
    core subsets is used, keeping the per-comparison cost at
    ``Theta(log(n / delta))`` queries.
    """
    v_i, v_j, s_i, s_j = int(v_i), int(v_j), int(s_i), int(s_j)
    if s_i == s_j:
        anchors = [x for x in cores[s_i] if x not in (v_i, v_j)]
        if not anchors:
            return oracle.compare(v_i, s_i, v_j, s_j)
        xs = np.asarray(anchors, dtype=np.int64)
        count = int(
            np.count_nonzero(
                oracle.compare_batch(
                    np.full(len(xs), v_i, dtype=np.int64),
                    xs,
                    np.full(len(xs), v_j, dtype=np.int64),
                    xs,
                )
            )
        )
        comparisons = len(anchors)
    else:
        left = [x for x in subset_cores[s_i] if x != v_i]
        right = [y for y in subset_cores[s_j] if y != v_j]
        if not left or not right:
            return oracle.compare(v_i, s_i, v_j, s_j)
        xs = np.repeat(np.asarray(left, dtype=np.int64), len(right))
        ys = np.tile(np.asarray(right, dtype=np.int64), len(left))
        count = int(
            np.count_nonzero(
                oracle.compare_batch(
                    np.full(len(xs), v_i, dtype=np.int64),
                    xs,
                    np.full(len(xs), v_j, dtype=np.int64),
                    ys,
                )
            )
        )
        comparisons = len(left) * len(right)
    # Yes ("v_i is closer to its center") unless the count falls below threshold.
    return count >= threshold_fraction * comparisons


def kcenter_probabilistic(
    oracle: BaseQuadrupletOracle,
    k: int,
    min_cluster_size: int,
    points: Optional[Sequence[int]] = None,
    delta: float = 0.1,
    gamma: float = 2.0,
    first_center: Optional[int] = None,
    core_size: Optional[int] = None,
    assign_threshold: float = ASSIGN_THRESHOLD_FRACTION,
    seed: SeedLike = None,
) -> ClusteringResult:
    """Greedy k-center under persistent probabilistic noise (Algorithm 7).

    Parameters
    ----------
    oracle:
        Noisy quadruplet oracle.
    k:
        Number of centers.
    min_cluster_size:
        Lower bound ``m`` on the optimal cluster size, used to set the
        sampling probability ``gamma * log(n / delta) / m``.
    points:
        Records to cluster (default: all records).
    delta:
        Target failure probability.
    gamma:
        Sampling constant (the paper's analysis uses 450; its experiments,
        and our default, use 2).
    first_center:
        Optional fixed initial center (must be a sampled point if supplied).
    core_size:
        Override of the per-cluster core size (default
        ``ceil(8 * gamma * log(n / delta) / 9)``).
    assign_threshold:
        ACount fraction above which a point moves to a newer center; 0.3 in
        the paper's analysis, 0.5 by default here (see
        :data:`ASSIGN_THRESHOLD_FRACTION`).
    seed:
        Seed for sampling and Max-Adv randomisation.
    """
    if not 0.0 < assign_threshold < 1.0:
        raise InvalidParameterError("assign_threshold must be in (0, 1)")
    if points is None:
        points = list(range(len(oracle)))
    else:
        points = [int(p) for p in points]
    if not points:
        raise EmptyInputError("k-center needs at least one point")
    if not 1 <= k <= len(points):
        raise InvalidParameterError(f"k must be between 1 and {len(points)}, got {k}")
    if min_cluster_size < 1:
        raise InvalidParameterError("min_cluster_size must be at least 1")
    if gamma <= 0:
        raise InvalidParameterError("gamma must be positive")
    rng = ensure_rng(seed)
    queries_before = oracle.counter.charged_queries

    n = len(points)
    log_term = max(1.0, math.log(max(2, n) / delta))
    sample_probability = min(1.0, gamma * log_term / min_cluster_size)
    if core_size is None:
        core_size = max(2, int(math.ceil(8.0 * gamma * log_term / 9.0)))

    # --- Phase 1: sample V~ and run the greedy loop on it. -----------------
    sampled_mask = rng.random(n) < sample_probability
    sampled = [p for p, keep in zip(points, sampled_mask) if keep]
    if first_center is not None and int(first_center) not in sampled:
        sampled.append(int(first_center))
    if len(sampled) < k:
        # Not enough sampled points to host k centers; fall back to using all
        # points (equivalent to sampling probability 1).
        sampled = list(points)

    if first_center is None:
        s1 = sampled[int(rng.integers(0, len(sampled)))]
    else:
        s1 = int(first_center)

    centers: List[int] = [s1]
    clusters: Dict[int, Set[int]] = {s1: set(sampled)}
    cores: Dict[int, List[int]] = {
        s1: identify_core(oracle, list(clusters[s1]), s1, core_size)
    }

    def subset_core(center: int) -> List[int]:
        core = cores[center]
        size = max(1, int(math.isqrt(len(core))))
        return core[:size]

    while len(centers) < k:
        center_of: Dict[int, int] = {}
        for c, members in clusters.items():
            for u in members:
                center_of[u] = c
        candidates = [u for u in sampled if u not in centers]
        if not candidates:
            break
        subset_cores = {c: subset_core(c) for c in centers}

        def comparison(i: int, j: int) -> bool:
            return cluster_comp(
                oracle,
                i,
                center_of[i],
                j,
                center_of[j],
                cores,
                subset_cores,
            )

        view = FunctionComparisonOracle(comparison, counter=oracle.counter)
        # The farthest-point search trusts the current assignment; a point that
        # was accidentally left in a far-away cluster would masquerade as the
        # farthest point and plant a duplicate center in an already-covered
        # region.  Before accepting a winner, its own assignment is therefore
        # re-checked with core-vs-core votes; if the point actually belongs to
        # a closer cluster it is moved and the search repeats.
        new_center = None
        for _ in range(8):
            candidate = max_adversarial(
                candidates,
                view,
                delta=max(1e-6, delta / max(1, k - 1)),
                n_iterations=1,
                seed=rng,
            )
            best_center = center_of[candidate]
            for other in centers:
                if other == best_center:
                    continue
                if core_duel(oracle, candidate, cores[other], cores[best_center]):
                    best_center = other
            if best_center == center_of[candidate]:
                new_center = candidate
                break
            clusters[center_of[candidate]].discard(candidate)
            clusters[best_center].add(candidate)
            center_of[candidate] = best_center
        if new_center is None:
            new_center = candidate

        # --- Assign (Algorithm 8): pull points towards the new center. -----
        clusters[new_center] = {new_center}
        for s_j in centers:
            members = list(clusters[s_j])
            core_j = cores[s_j]
            for u in members:
                if u == s_j or u in cores[s_j] or u == new_center:
                    continue
                score = acount(oracle, u, new_center, core_j)
                if score > assign_threshold * len(core_j):
                    clusters[s_j].discard(u)
                    clusters[new_center].add(u)
        cores[new_center] = identify_core(
            oracle, list(clusters[new_center]), new_center, core_size
        )
        centers.append(new_center)

    # --- Phase 2: Assign-Final over every point. ----------------------------
    # Every point (sampled or not) walks through the centers in selection
    # order and moves whenever the core-vs-core vote (core_duel) says it is
    # closer to the newer center.  Using both cores per decision is the
    # assignment analogue of ClusterComp; it keeps the per-point failure
    # probability negligible, which matters because a single misassigned
    # point determines the (max-based) k-center objective.
    assignment: Dict[int, int] = {}
    center_set = set(centers)
    for u in points:
        if u in center_set:
            assignment[u] = u
            continue
        current = centers[0]
        for s_i in centers[1:]:
            if core_duel(oracle, u, cores[s_i], cores[current]):
                current = s_i
        assignment[u] = current

    n_queries = oracle.counter.charged_queries - queries_before
    return ClusteringResult(
        centers=centers,
        assignment=assignment,
        n_queries=n_queries,
        meta={
            "noise_model": "probabilistic",
            "delta": delta,
            "gamma": gamma,
            "core_size": core_size,
            "assign_threshold": assign_threshold,
            "sample_size": len(sampled),
            "sample_probability": sample_probability,
        },
    )
