"""k-center clustering result container and objective evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ClusteringError, InvalidParameterError
from repro.metric.space import MetricSpace


@dataclass
class ClusteringResult:
    """Centers and point-to-center assignment produced by a k-center algorithm.

    Attributes
    ----------
    centers:
        The selected center records, in the order they were chosen.
    assignment:
        ``assignment[i]`` is the center record that point ``i`` is assigned
        to.  Every value must be an element of ``centers``.
    n_queries:
        Number of oracle queries charged while producing this clustering
        (zero for ground-truth baselines).
    meta:
        Free-form extra information recorded by the algorithm (parameters,
        per-phase query counts, ...).
    """

    centers: List[int]
    assignment: Dict[int, int]
    n_queries: int = 0
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        center_set = set(self.centers)
        if len(center_set) != len(self.centers):
            raise ClusteringError("duplicate centers in clustering result")
        for point, center in self.assignment.items():
            if center not in center_set:
                raise ClusteringError(
                    f"point {point} assigned to {center}, which is not a center"
                )

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.centers)

    def cluster_members(self) -> Dict[int, List[int]]:
        """Mapping from each center to the sorted list of points assigned to it."""
        members: Dict[int, List[int]] = {c: [] for c in self.centers}
        for point, center in self.assignment.items():
            members[center].append(point)
        return {c: sorted(pts) for c, pts in members.items()}

    def labels(self, n_points: Optional[int] = None) -> np.ndarray:
        """Cluster labels (index of the assigned center within ``centers``) per point.

        Points missing from the assignment receive label ``-1``.
        """
        if n_points is None:
            n_points = max(self.assignment) + 1 if self.assignment else 0
        center_index = {c: idx for idx, c in enumerate(self.centers)}
        labels = np.full(n_points, -1, dtype=int)
        for point, center in self.assignment.items():
            if point < n_points:
                labels[point] = center_index[center]
        return labels


def kcenter_objective(space: MetricSpace, result: ClusteringResult) -> float:
    """Maximum true distance of any point from its assigned center (lower is better)."""
    if not result.assignment:
        raise InvalidParameterError("clustering result has an empty assignment")
    points = np.fromiter(result.assignment.keys(), dtype=np.int64)
    centers = np.fromiter(result.assignment.values(), dtype=np.int64)
    return float(space.pair_distances(points, centers).max())


def kcenter_objective_for_centers(
    space: MetricSpace, centers: Sequence[int], points: Optional[Sequence[int]] = None
) -> float:
    """Objective of the *best possible* assignment to the given centers.

    Useful to score a set of centers independently of how a noisy algorithm
    assigned the points.
    """
    centers = np.asarray([int(c) for c in centers], dtype=np.int64)
    if len(centers) == 0:
        raise InvalidParameterError("need at least one center")
    if points is None:
        points = np.arange(len(space), dtype=np.int64)
    else:
        points = np.asarray([int(p) for p in points], dtype=np.int64)
    if len(points) == 0:
        return 0.0
    # One batched distance evaluation per center (k is small), keeping the
    # working set at O(n) instead of materialising the n x k grid.
    best = space.distances_from(int(centers[0]), points)
    for c in centers[1:]:
        np.minimum(best, space.distances_from(int(c), points), out=best)
    return float(best.max())
