"""Noise-free greedy k-center (Gonzalez 1985): the ``TDist`` baseline.

The greedy algorithm picks an arbitrary first center, then repeatedly adds
the point farthest from its current centers and reassigns points to the
closest center.  With exact distances it is a 2-approximation of the optimal
k-center objective, which is the best possible unless P = NP; the paper
normalises every noisy algorithm's objective against this baseline.

Each greedy round evaluates all candidate distances as one batched
:meth:`~repro.metric.space.MetricSpace.distances_from` call (vectorised for
the built-in distance functions), so the loop below runs k rounds of array
arithmetic rather than ``n * k`` scalar distance evaluations.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import EmptyInputError, InvalidParameterError
from repro.kcenter.objective import ClusteringResult
from repro.metric.space import MetricSpace
from repro.rng import SeedLike, ensure_rng


def greedy_kcenter_exact(
    space: MetricSpace,
    k: int,
    points: Optional[Sequence[int]] = None,
    first_center: Optional[int] = None,
    seed: SeedLike = None,
) -> ClusteringResult:
    """Run the exact greedy (farthest-point traversal) k-center algorithm.

    Parameters
    ----------
    space:
        Ground-truth metric space.
    k:
        Number of centers to select.
    points:
        Subset of records to cluster (default: all records).
    first_center:
        Optional fixed initial center; chosen uniformly at random otherwise.
    seed:
        Seed for the initial-center choice.
    """
    if points is None:
        points = list(range(len(space)))
    else:
        points = [int(p) for p in points]
    if not points:
        raise EmptyInputError("greedy k-center needs at least one point")
    if not 1 <= k <= len(points):
        raise InvalidParameterError(
            f"k must be between 1 and {len(points)}, got {k}"
        )
    rng = ensure_rng(seed)
    if first_center is None:
        first_center = points[int(rng.integers(0, len(points)))]
    else:
        first_center = int(first_center)
        if first_center not in set(points):
            raise InvalidParameterError("first_center must be one of the points")

    centers = [first_center]
    # dist_to_centers[i] tracks the distance from points[i] to its closest center.
    point_array = np.asarray(points, dtype=int)
    dist_to_centers = space.distances_from(first_center, point_array)
    nearest_center = np.full(len(points), first_center, dtype=int)

    while len(centers) < k:
        farthest_pos = int(np.argmax(dist_to_centers))
        new_center = int(point_array[farthest_pos])
        if new_center in centers:
            # All remaining points coincide with existing centers; stop early.
            break
        centers.append(new_center)
        new_dists = space.distances_from(new_center, point_array)
        closer = new_dists < dist_to_centers
        dist_to_centers = np.where(closer, new_dists, dist_to_centers)
        nearest_center = np.where(closer, new_center, nearest_center)

    assignment = {int(p): int(c) for p, c in zip(point_array, nearest_center)}
    for c in centers:
        assignment[c] = c
    return ClusteringResult(centers=centers, assignment=assignment, n_queries=0)
