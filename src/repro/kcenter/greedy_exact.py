"""Noise-free greedy k-center (Gonzalez 1985): the ``TDist`` baseline.

The greedy algorithm picks an arbitrary first center, then repeatedly adds
the point farthest from its current centers and reassigns points to the
closest center.  With exact distances it is a 2-approximation of the optimal
k-center objective, which is the best possible unless P = NP; the paper
normalises every noisy algorithm's objective against this baseline.

Each greedy round evaluates all candidate distances as one batched
:meth:`~repro.metric.space.MetricSpace.distances_from` call (vectorised for
the built-in distance functions), so the loop below runs k rounds of array
arithmetic rather than ``n * k`` scalar distance evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import EmptyInputError, InvalidParameterError
from repro.kcenter.objective import ClusteringResult
from repro.metric.space import MetricSpace
from repro.rng import SeedLike, ensure_rng


@dataclass
class GreedyTrace:
    """The full state of one greedy farthest-point traversal.

    Exposes what :class:`~repro.kcenter.objective.ClusteringResult` throws
    away: the per-round selection values and the running nearest-center
    arrays, which is exactly the state an incremental maintainer needs to
    decide whether an edit perturbs the traversal.

    Attributes
    ----------
    points:
        The records the traversal ran over, in input order.
    centers:
        Selected centers, in selection order.
    selection_values:
        For each center after the first, the farthest-point distance with
        which it was selected (the round's ``max`` over ``dist_to_centers``).
    dist_to_centers:
        Distance from ``points[i]`` to its closest center, aligned with
        *points*.
    nearest_center:
        Closest center id for ``points[i]``, aligned with *points*.
    """

    points: List[int]
    centers: List[int]
    selection_values: List[float] = field(default_factory=list)
    dist_to_centers: np.ndarray = field(default_factory=lambda: np.zeros(0))
    nearest_center: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))

    def result(self) -> ClusteringResult:
        """Collapse the trace into the batch API's result type."""
        assignment = {
            int(p): int(c) for p, c in zip(self.points, self.nearest_center)
        }
        for c in self.centers:
            assignment[c] = c
        return ClusteringResult(
            centers=list(self.centers), assignment=assignment, n_queries=0
        )


def greedy_trace(
    space: MetricSpace,
    k: int,
    points: Sequence[int],
    first_center: int,
) -> GreedyTrace:
    """Run the greedy traversal and keep its full per-round state.

    This is the loop :func:`greedy_kcenter_exact` has always run, extracted
    so the incremental maintainer's fallback recompute is the same code (and
    therefore bit-identical) rather than a reimplementation.
    """
    points = [int(p) for p in points]
    if not points:
        raise EmptyInputError("greedy k-center needs at least one point")
    first_center = int(first_center)
    centers = [first_center]
    selection_values: List[float] = []
    # dist_to_centers[i] tracks the distance from points[i] to its closest center.
    point_array = np.asarray(points, dtype=int)
    dist_to_centers = space.distances_from(first_center, point_array)
    nearest_center = np.full(len(points), first_center, dtype=int)

    while len(centers) < k:
        farthest_pos = int(np.argmax(dist_to_centers))
        new_center = int(point_array[farthest_pos])
        if new_center in centers:
            # All remaining points coincide with existing centers; stop early.
            break
        centers.append(new_center)
        selection_values.append(float(dist_to_centers[farthest_pos]))
        new_dists = space.distances_from(new_center, point_array)
        closer = new_dists < dist_to_centers
        dist_to_centers = np.where(closer, new_dists, dist_to_centers)
        nearest_center = np.where(closer, new_center, nearest_center)

    return GreedyTrace(
        points=points,
        centers=centers,
        selection_values=selection_values,
        dist_to_centers=dist_to_centers,
        nearest_center=nearest_center,
    )


def greedy_kcenter_exact(
    space: MetricSpace,
    k: int,
    points: Optional[Sequence[int]] = None,
    first_center: Optional[int] = None,
    seed: SeedLike = None,
) -> ClusteringResult:
    """Run the exact greedy (farthest-point traversal) k-center algorithm.

    Parameters
    ----------
    space:
        Ground-truth metric space.
    k:
        Number of centers to select.
    points:
        Subset of records to cluster (default: all records).
    first_center:
        Optional fixed initial center; chosen uniformly at random otherwise.
    seed:
        Seed for the initial-center choice.
    """
    if points is None:
        points = list(range(len(space)))
    else:
        points = [int(p) for p in points]
    if not points:
        raise EmptyInputError("greedy k-center needs at least one point")
    if not 1 <= k <= len(points):
        raise InvalidParameterError(
            f"k must be between 1 and {len(points)}, got {k}"
        )
    rng = ensure_rng(seed)
    if first_center is None:
        first_center = points[int(rng.integers(0, len(points)))]
    else:
        first_center = int(first_center)
        if first_center not in set(points):
            raise InvalidParameterError("first_center must be one of the points")

    return greedy_trace(space, k, points, first_center).result()
