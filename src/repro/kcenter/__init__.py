"""Robust k-center clustering with a noisy quadruplet oracle (Section 4 of the paper).

The classic greedy (Gonzalez) algorithm alternates two primitives — "find the
point farthest from its assigned center" and "assign every point to its
closest center" — both of which become unreliable when distances can only be
compared through a noisy oracle.  This package provides:

* :func:`greedy_kcenter_exact` — the noise-free greedy baseline (``TDist``).
* :func:`kcenter_adversarial` — Algorithm 6: Approx-Farthest via Max-Adv and
  MCount-based assignment, a ``2 + O(mu)`` approximation.
* :func:`kcenter_probabilistic` — Algorithm 7: sampling, per-cluster cores
  (Identify-Core), robust ACount assignment and ClusterComp-based farthest
  search, an ``O(1)`` approximation when optimal clusters are large.
* Baseline cluster assignments (``Tour2`` and ``Samp``) live in
  :mod:`repro.baselines`.
"""

from repro.kcenter.adversarial import kcenter_adversarial
from repro.kcenter.greedy_exact import greedy_kcenter_exact
from repro.kcenter.objective import ClusteringResult, kcenter_objective
from repro.kcenter.probabilistic import kcenter_probabilistic

__all__ = [
    "ClusteringResult",
    "kcenter_objective",
    "greedy_kcenter_exact",
    "kcenter_adversarial",
    "kcenter_probabilistic",
]
