"""k-center clustering under adversarial noise (Algorithm 6 of the paper).

The greedy loop of Gonzalez is kept, but its two primitives are replaced by
robust counterparts:

* **Approx-Farthest** — the next center is the point whose distance to its
  currently assigned center is (approximately) maximal, found with Max-Adv
  (Algorithm 4) over the "distance to my assigned center" comparison view.
  One comparison costs one quadruplet query ``O(v_i, s_i, v_j, s_j)``.
* **Assign** — every point keeps an ``MCount`` score per center: the number
  of other centers the oracle believes are farther from the point.  The
  point is assigned to the center with the highest score, which is a
  ``(1 + mu)^2`` approximation of the closest center (Lemma 10.2).  Scores
  are maintained incrementally: adding a center costs one new quadruplet
  query per (point, existing center) pair, so the whole run charges
  ``O(n k^2)`` assignment queries as in Theorem 4.2.

With ``mu < 1/18`` the returned clustering is a ``(2 + O(mu))``
approximation of the optimal k-center objective with probability
``1 - delta`` (Theorem 4.2).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.exceptions import EmptyInputError, InvalidParameterError
from repro.kcenter.objective import ClusteringResult
from repro.maximum.adversarial import max_adversarial
from repro.oracles.base import AssignmentDistanceOracle, BaseQuadrupletOracle
from repro.rng import SeedLike, ensure_rng


def kcenter_adversarial(
    oracle: BaseQuadrupletOracle,
    k: int,
    points: Optional[Sequence[int]] = None,
    delta: float = 0.1,
    first_center: Optional[int] = None,
    farthest_iterations: Optional[int] = None,
    seed: SeedLike = None,
) -> ClusteringResult:
    """Greedy k-center with robust farthest search and assignment (Algorithm 6).

    Parameters
    ----------
    oracle:
        Noisy quadruplet oracle over the hidden metric.
    k:
        Number of centers.
    points:
        Records to cluster (default: every record of the oracle's space).
    delta:
        Overall failure probability; each Approx-Farthest call runs with
        ``delta / k``.
    first_center:
        Optional fixed initial center.
    farthest_iterations:
        Override of the repetition count ``t`` inside Max-Adv (the paper's
        experiments use ``t = 1``).
    seed:
        Seed for all randomised choices.
    """
    if points is None:
        points = list(range(len(oracle)))
    else:
        points = [int(p) for p in points]
    if not points:
        raise EmptyInputError("k-center needs at least one point")
    if not 1 <= k <= len(points):
        raise InvalidParameterError(f"k must be between 1 and {len(points)}, got {k}")
    rng = ensure_rng(seed)
    queries_before = oracle.counter.charged_queries

    if first_center is None:
        first_center = points[int(rng.integers(0, len(points)))]
    else:
        first_center = int(first_center)
        if first_center not in set(points):
            raise InvalidParameterError("first_center must be one of the points")

    centers: List[int] = [first_center]
    assignment: Dict[int, int] = {p: first_center for p in points}
    # mcount[p][c] counts, for point p, how many *other* centers the oracle
    # believes are at least as far from p as center c is.
    mcount: Dict[int, Dict[int, int]] = {p: {first_center: 0} for p in points}

    per_call_delta = max(1e-6, delta / max(1, k - 1))
    if farthest_iterations is None:
        farthest_iterations = max(
            1, int(math.ceil(math.log(2.0 / per_call_delta)))
        )

    while len(centers) < k:
        center_set = set(centers)
        candidates = [p for p in points if p not in center_set]
        if not candidates:
            break

        # --- Approx-Farthest: point with maximal distance to its own center.
        view = AssignmentDistanceOracle(oracle, assignment)
        new_center = max_adversarial(
            candidates,
            view,
            delta=per_call_delta,
            n_iterations=farthest_iterations,
            seed=rng,
        )

        # --- Assign: update MCount scores with the new center and reassign.
        for p in points:
            if p == new_center or p in center_set:
                continue
            scores = mcount[p]
            scores[new_center] = 0
            for existing in centers:
                # Yes means d(existing, p) <= d(new_center, p): the existing
                # center wins this comparison, otherwise the new center does.
                if oracle.compare(existing, p, new_center, p):
                    scores[existing] += 1
                else:
                    scores[new_center] += 1
            best = max(scores.items(), key=lambda item: item[1])[0]
            assignment[p] = best
        centers.append(new_center)
        assignment[new_center] = new_center
        mcount[new_center] = {new_center: len(centers) - 1}

    for c in centers:
        assignment[c] = c
    n_queries = oracle.counter.charged_queries - queries_before
    return ClusteringResult(
        centers=centers,
        assignment=dict(assignment),
        n_queries=n_queries,
        meta={
            "noise_model": "adversarial",
            "delta": delta,
            "farthest_iterations": farthest_iterations,
        },
    )
