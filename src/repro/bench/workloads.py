"""Measured workloads behind the standing benchmark cells.

Each function runs one benchmark workload at a given scale and returns a
flat metrics dict.  Metrics are deliberately deterministic given
``(params, seed)`` — re-running a cell at the same seed must reproduce them
exactly.  Anything nondeterministic is measured, not computed: the runner
wraps every cell in a wall clock and tracemalloc, and workloads that time
sub-phases themselves (the batch suite's scalar-versus-batched stopwatches)
return those numbers under the reserved ``"measured"`` key, which the
runner splits out of the metrics before they reach the artifact.

The scaling workloads exercise the two paths the lazy metric layer makes
first-class at n = 50,000:

* ``count_max`` — Count-Max over a sample of records viewed through a
  :class:`~repro.oracles.quadruplet.DistanceQuadrupletOracle`, i.e. scattered
  ``pair_distances`` batches against the full space;
* ``greedy_kcenter`` — greedy farthest-point k-center, i.e. row-shaped
  ``distances_from`` sweeps; and
* ``nn_scan`` — exact nearest-neighbour scans over all records.

The batch workloads re-measure PR 1's batched-versus-scalar claim as
numbers rather than a pass/fail assertion, so the speedup trajectory is
visible across commits.  The service workload measures what micro-batching
buys over per-query round trips, and the store workload measures what the
persistent answer warehouse saves across concurrent sessions and repeated
runs.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.incremental.difftest import (
    difftest_count_max,
    difftest_kcenter,
    difftest_linkage,
)
from repro.incremental.edits import generate_edit_stream
from repro.kcenter.greedy_exact import greedy_kcenter_exact
from repro.kcenter.objective import kcenter_objective
from repro.maximum.count_max import count_max
from repro.metric.space import PointCloudSpace
from repro.neighbors.exact import exact_nearest
from repro.oracles.base import distance_comparison_view
from repro.oracles.comparison import ValueComparisonOracle
from repro.oracles.counting import QueryCounter
from repro.oracles.quadruplet import DistanceQuadrupletOracle
from repro.rng import ensure_rng, sample_without_replacement
from repro.oracles.noise import ProbabilisticNoise
from repro.service.core import CrowdOracleService, ServiceConfig
from repro.service.load import run_comparison_load
from repro.store.oracle import StoredComparisonOracle
from repro.store.warehouse import AnswerStore

#: Dimension of the synthetic benchmark clouds.
BENCH_DIMENSION = 8


def make_bench_space(n: int, backend: str, seed: int) -> PointCloudSpace:
    """Uniform benchmark cloud on the requested metric backend.

    ``"dense"`` reproduces the classic :class:`PointCloudSpace` behaviour
    (dense memoisation up to the cache limit, direct evaluation beyond);
    ``"lazy"`` uses the bounded-memory block backend at its defaults;
    ``"disk"`` adds the memory-mapped spill file, so evicted blocks and
    computed rows reload instead of being recomputed.  The coordinates
    depend only on *seed*, so every backend sees identical ground truth.
    """
    points = ensure_rng(seed).uniform(0.0, 1.0, size=(n, BENCH_DIMENSION))
    return PointCloudSpace(points, backend=backend)


def run_count_max(
    n: int = 2000,
    backend: str = "lazy",
    sample_size: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Count-Max over a record sample via a quadruplet "farthest from q" view.

    ``sample_size`` defaults to 256, stepping up to 1024 at n >= 500,000 so
    the million-point cells push enough constant-anchor pairs per batch to
    cross the disk backend's row threshold (the reload path under test).
    """
    if sample_size is None:
        sample_size = 1024 if n >= 500_000 else 256
    space = make_bench_space(n, backend, seed)
    counter = QueryCounter()
    oracle = DistanceQuadrupletOracle(space, counter=counter, cache_answers=False)
    view = distance_comparison_view(oracle, query=0)
    m = min(int(sample_size), n - 1)
    items = (sample_without_replacement(ensure_rng(seed), n - 1, m) + 1).tolist()
    winner = count_max(items, view, seed=seed)
    return {
        "sample_size": m,
        "queries": counter.charged_queries,
        "winner_is_true_farthest": bool(winner == space.farthest_from(0, items)),
        **_cache_metrics(space),
    }


def run_greedy_kcenter(
    n: int = 2000, backend: str = "lazy", k: int = 8, seed: int = 0
) -> Dict[str, Any]:
    """Greedy farthest-point k-center plus one full objective evaluation."""
    space = make_bench_space(n, backend, seed)
    result = greedy_kcenter_exact(space, k=k, seed=seed)
    return {
        "k": result.k,
        "objective": kcenter_objective(space, result),
        **_cache_metrics(space),
    }


def run_nn_scan(
    n: int = 2000, backend: str = "lazy", n_queries: int = 8, seed: int = 0
) -> Dict[str, Any]:
    """Exact nearest-neighbour scans from *n_queries* seeded query records."""
    space = make_bench_space(n, backend, seed)
    queries = sample_without_replacement(ensure_rng(seed), n, min(int(n_queries), n))
    neighbours = [exact_nearest(space, int(q)) for q in queries]
    return {
        "n_queries": len(neighbours),
        "neighbour_checksum": int(np.sum(neighbours) % 1_000_000),
        **_cache_metrics(space),
    }


def _cache_metrics(space: PointCloudSpace) -> Dict[str, Any]:
    """Backend counters for the metrics dict; empty for the dense backend.

    Metrics a backend does not have are *omitted*, never emitted as nulls —
    dense cells simply have no ``backend_*`` keys in the artifact.
    """
    stats = space.backend_stats()
    if not stats:
        return {}
    metrics = {
        "backend_cache_bytes": stats["current_bytes"],
        "backend_cache_hits": stats["hits"],
        "backend_blocks_materialized": stats["materialized_blocks"],
    }
    if "reloads" in stats:  # disk backend: the reload-not-recompute evidence
        metrics["backend_spills"] = stats["spills"]
        metrics["backend_reloads"] = stats["reloads"]
        metrics["backend_rows_stored"] = stats["rows_stored"]
        metrics["backend_spill_bytes"] = stats["spill_bytes"]
    return metrics


# --- batched-versus-scalar workloads (BENCH_batch.json) ----------------------


def _count_max_scalar_reference(items, oracle, seed):
    """The pre-batching Count-Max loop, kept as the scalar yardstick."""
    scores = {i: 0 for i in items}
    for a_pos, a in enumerate(items):
        for b in items[a_pos + 1 :]:
            if oracle.compare(a, b):
                scores[b] += 1
            else:
                scores[a] += 1
    best = max(scores.values())
    winners = [i for i, s in scores.items() if s == best]
    if len(winners) == 1:
        return winners[0]
    rng = ensure_rng(seed)
    return int(winners[int(rng.integers(0, len(winners)))])


def run_count_max_batch(n: int = 1000, seed: int = 0) -> Dict[str, Any]:
    """Batched Count-Max versus the scalar loop on identically-seeded oracles."""
    values = ensure_rng(seed).uniform(0.0, 100.0, size=n)
    items = list(range(n))

    def fresh_oracle():
        return ValueComparisonOracle(values, counter=QueryCounter(), cache_answers=False)

    start = time.perf_counter()
    scalar_winner = _count_max_scalar_reference(items, fresh_oracle(), seed)
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched_winner = count_max(items, fresh_oracle(), seed=seed)
    batched_seconds = time.perf_counter() - start
    return {
        "outputs_identical": bool(batched_winner == scalar_winner),
        "measured": {
            "scalar_seconds": scalar_seconds,
            "batched_seconds": batched_seconds,
            "speedup": scalar_seconds / max(batched_seconds, 1e-9),
        },
    }


def run_pair_distances_batch(
    n: int = 2000, backend: str = "lazy", m_pairs: int = 20000, seed: int = 0
) -> Dict[str, Any]:
    """Batched ``pair_distances`` versus a scalar ``distance`` loop."""
    space = make_bench_space(n, backend, seed)
    rng = ensure_rng(seed)
    i = rng.integers(0, n, size=int(m_pairs))
    j = rng.integers(0, n, size=int(m_pairs))
    start = time.perf_counter()
    scalar = np.fromiter(
        (space.distance(int(a), int(b)) for a, b in zip(i, j)), dtype=float, count=len(i)
    )
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    batched = space.pair_distances(i, j)
    batched_seconds = time.perf_counter() - start
    return {
        "m_pairs": int(m_pairs),
        "outputs_identical": bool(np.array_equal(scalar, batched)),
        "measured": {
            "scalar_seconds": scalar_seconds,
            "batched_seconds": batched_seconds,
            "speedup": scalar_seconds / max(batched_seconds, 1e-9),
        },
    }


# --- crowd-service workloads (BENCH_service.json) -----------------------------


def run_service_throughput(
    sessions: int = 16,
    batch_window_ms: float = 5.0,
    queries_per_session: int = 40,
    n_records: int = 500,
    latency_ms: float = 2.0,
    seed: int = 0,
) -> Dict[str, Any]:
    """Micro-batched service throughput versus one-query-per-roundtrip serving.

    Both modes drive identical seeded query streams from *sessions*
    concurrent sessions against identically seeded backends over a simulated
    crowd that costs ``latency_ms`` per dispatched batch, on a single crowd
    channel (``max_inflight=1``) so the comparison isolates what coalescing
    buys.  The batched mode flushes on the ``batch_window_ms`` window (or a
    full batch); the baseline dispatches every query as its own round trip.
    """
    values = ensure_rng(seed).uniform(0.0, 100.0, size=int(n_records))

    def run_mode(batched: bool) -> Dict[str, Any]:
        backend = ValueComparisonOracle(values, counter=QueryCounter())
        config = ServiceConfig(
            batch_window=(batch_window_ms / 1000.0) if batched else 0.0,
            max_batch_size=1024 if batched else 1,
            max_inflight=1,
            latency=latency_ms / 1000.0,
            seed=seed,
        )

        async def scenario() -> Dict[str, Any]:
            async with CrowdOracleService(comparison=backend, config=config) as service:
                return await run_comparison_load(
                    service,
                    n_sessions=int(sessions),
                    queries_per_session=int(queries_per_session),
                    n_records=int(n_records),
                    seed=seed,
                )

        return asyncio.run(scenario())

    batched = run_mode(True)
    baseline = run_mode(False)
    batched_qps = batched["measured"]["throughput_qps"]
    baseline_qps = baseline["measured"]["throughput_qps"]
    return {
        "n_queries": batched["n_queries"],
        # Identical seeded query streams over identically seeded exact
        # backends must agree regardless of batch composition.
        "outputs_identical": bool(batched["yes_answers"] == baseline["yes_answers"]),
        "yes_answers": batched["yes_answers"],
        "measured": {
            "throughput_qps": batched_qps,
            "baseline_throughput_qps": baseline_qps,
            "speedup_vs_roundtrip": batched_qps / max(baseline_qps, 1e-9),
            "latency_p50_ms": batched["measured"]["latency_p50_ms"],
            "latency_p95_ms": batched["measured"]["latency_p95_ms"],
            "baseline_latency_p50_ms": baseline["measured"]["latency_p50_ms"],
            "mean_batch_size": batched["service_stats"]["mean_batch_size"],
            "n_batches": batched["service_stats"]["n_batches"],
        },
    }


# --- answer-warehouse workloads (BENCH_store.json) ----------------------------


def run_store_dedup(
    sessions: int = 4,
    replication: int = 1,
    queries_per_session: int = 50,
    n_records: int = 60,
    batch_window_ms: float = 2.0,
    latency_ms: float = 1.0,
    noise_p: float = 0.1,
    seed: int = 0,
) -> Dict[str, Any]:
    """Cross-session and cross-run dedup through a shared answer warehouse.

    Two phases over one on-disk :class:`~repro.store.AnswerStore`, both
    driving *sessions* concurrent sessions with an identical "hot content"
    query stream (``shared_stream=True`` — the access pattern of many users
    asking the same trending comparisons):

    * **cold** — the store starts empty; the first arrival of each distinct
      query pays the crowd (``replication`` times), everyone else hits, so
      the cold hit rate measures *cross-session* dedup;
    * **warm** — a fresh service and fresh sessions against the same
      directory, the re-run pattern; at ``replication=1`` every query hits.

    The charged/hit splits are deterministic given ``(params, seed)``
    regardless of event-loop interleaving (who pays first varies, the totals
    do not); wall-clock numbers land under ``"measured"``.

    Opening the store (WAL replay into the read index) is timed separately
    from serving: ``*_open_seconds`` is the one-off replay cost per phase,
    ``*_throughput_qps`` is steady-state serving with the store already
    open, and ``warm_throughput_qps_amortized`` folds the warm phase's open
    back in — the figure a short-lived rerun actually observes.  Earlier
    revisions reported neither and the open cost plus a per-micro-batch
    simulated-latency charge on all-hit batches pinned ``warm_speedup`` at
    ≈ 1.0 no matter how warm the store was.
    """
    values = ensure_rng(seed).uniform(0.0, 100.0, size=int(n_records))
    n_queries = int(sessions) * int(queries_per_session)

    def run_phase(directory: str, phase_seed: int) -> Dict[str, Any]:
        # Independent votes, as replication > 1 requires: no per-query
        # memoisation in the backend (cache_answers=False) and a fresh noise
        # draw per ask (persistent=False) — each re-forwarded query models a
        # different worker, so the r=3 cells measure real vote aggregation
        # rather than three copies of one memoised answer.
        backend = ValueComparisonOracle(
            values,
            noise=ProbabilisticNoise(p=noise_p, seed=phase_seed, persistent=False),
            counter=QueryCounter(),
            cache_answers=False,
        )
        open_start = time.perf_counter()
        store = AnswerStore(directory, replication=int(replication))
        open_seconds = time.perf_counter() - open_start
        config = ServiceConfig(
            batch_window=batch_window_ms / 1000.0,
            max_inflight=1,
            latency=latency_ms / 1000.0,
            seed=seed,
        )

        async def scenario() -> Dict[str, Any]:
            async with CrowdOracleService(
                comparison=backend, config=config, store=store
            ) as service:
                return await run_comparison_load(
                    service,
                    n_sessions=int(sessions),
                    queries_per_session=int(queries_per_session),
                    n_records=int(n_records),
                    seed=seed,
                    shared_stream=True,
                )

        try:
            report = asyncio.run(scenario())
        finally:
            store.close()
        report["measured"]["store_open_seconds"] = open_seconds
        return report

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        cold = run_phase(tmp, phase_seed=seed)
        warm = run_phase(tmp, phase_seed=seed + 1)

    def savings(report: Dict[str, Any]) -> float:
        return 1.0 - report["charged_queries"] / max(n_queries, 1)

    return {
        "n_queries": n_queries,
        "cold_charged": cold["charged_queries"],
        "cold_hit_rate": cold["cached_queries"] / n_queries,
        "cold_query_savings": savings(cold),
        "warm_charged": warm["charged_queries"],
        "warm_hit_rate": warm["cached_queries"] / n_queries,
        "warm_query_savings": savings(warm),
        "measured": {
            "cold_wall_seconds": cold["measured"]["wall_seconds"],
            "warm_wall_seconds": warm["measured"]["wall_seconds"],
            "cold_open_seconds": cold["measured"]["store_open_seconds"],
            "warm_open_seconds": warm["measured"]["store_open_seconds"],
            # Steady state: serving only, the store already open.
            "cold_throughput_qps": cold["measured"]["throughput_qps"],
            "warm_throughput_qps": warm["measured"]["throughput_qps"],
            # Open-amortised: what a short-lived rerun observes end to end.
            "warm_throughput_qps_amortized": n_queries
            / max(
                warm["measured"]["store_open_seconds"]
                + warm["measured"]["wall_seconds"],
                1e-9,
            ),
            "warm_speedup": cold["measured"]["wall_seconds"]
            / max(warm["measured"]["wall_seconds"], 1e-9),
            "warm_speedup_amortized": (
                cold["measured"]["store_open_seconds"]
                + cold["measured"]["wall_seconds"]
            )
            / max(
                warm["measured"]["store_open_seconds"]
                + warm["measured"]["wall_seconds"],
                1e-9,
            ),
        },
    }


def run_store_scale(
    n_shards: int = 8,
    group_commit_ms: float = 5.0,
    n_queries: int = 20_000,
    n_records: int = 512,
    chunk: int = 2048,
    noise_p: float = 0.1,
    seed: int = 0,
) -> Dict[str, Any]:
    """Raw warehouse throughput versus the direct oracle path, by shard layout.

    ``run_store_dedup`` measures the warehouse *through* the asyncio service,
    so its numbers are dominated by batching windows and simulated crowd
    latency.  This workload benches the storage layer itself — a
    :class:`~repro.store.oracle.StoredComparisonOracle` driven synchronously
    with ``chunk``-sized ``compare_batch`` calls, no event loop, no sleeps —
    across the two knobs the sharded format added:

    * ``n_shards`` — how the keyspace is split into WAL+snapshot segments;
    * ``group_commit_ms`` — the fsync-batching window.  ``0`` means
      ``sync="always"`` (one fsync per append batch, the no-group-commit
      baseline); positive values use ``sync="group"`` with that window.

    Four timed phases over one uniform query stream (repeats included, so
    the warm phase is meaningful):

    * **direct** — the inner oracle alone, persistent probabilistic noise,
      no store.  The baseline the warehouse must beat warm.
    * **cold** — an empty store; every distinct query is appended and
      group-committed.  Ends with a ``flush()`` so the WAL durability cost
      is inside the clock.
    * **open** — closing and reopening the store, i.e. WAL replay into the
      read index.  Timed on its own so warm throughput is steady-state.
    * **warm** — the reopened store serves the whole stream from the
      in-memory index; the inner oracle is never consulted.

    Answers are deterministic and identical across the three serving phases
    (the cold-store determinism contract plus majority readout at
    ``replication=1``); ``outputs_identical`` asserts it.  Wall-clock
    figures land under ``"measured"``.
    """
    n_queries = int(n_queries)
    n_records = int(n_records)
    rng = ensure_rng(seed)
    values = rng.uniform(0.0, 100.0, size=n_records)
    left = rng.integers(0, n_records, size=n_queries)
    right = rng.integers(0, n_records, size=n_queries)
    clash = left == right
    # Self-comparisons are answered trivially without touching the store;
    # nudge them off the diagonal so every query exercises the serving path.
    right[clash] = (left[clash] + 1) % n_records

    def make_backend() -> ValueComparisonOracle:
        # Same seed for every phase: the cold wrapper forwards exactly the
        # first occurrence of each distinct query, so with one shared noise
        # stream the direct, cold and warm phases must agree answer for
        # answer (cache_answers=False keeps the store the only dedup layer).
        return ValueComparisonOracle(
            values,
            noise=ProbabilisticNoise(p=noise_p, seed=seed, persistent=True),
            counter=QueryCounter(),
            cache_answers=False,
        )

    def drive(compare_batch) -> tuple:
        yes = 0
        start = time.perf_counter()
        for lo in range(0, n_queries, int(chunk)):
            out = compare_batch(
                left[lo : lo + int(chunk)], right[lo : lo + int(chunk)]
            )
            yes += int(np.count_nonzero(out))
        return yes, time.perf_counter() - start

    sync_mode = "always" if group_commit_ms <= 0 else "group"

    def open_store(directory: str) -> AnswerStore:
        return AnswerStore(
            directory,
            replication=1,
            n_shards=int(n_shards),
            sync=sync_mode,
            group_commit_window=max(group_commit_ms, 0.0) / 1000.0,
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-scale-") as tmp:
        direct_yes, direct_wall = drive(make_backend().compare_batch)

        store = open_store(tmp)
        cold_oracle = StoredComparisonOracle(make_backend(), store)
        cold_start = time.perf_counter()
        cold_yes, _ = drive(cold_oracle.compare_batch)
        store.flush()
        cold_wall = time.perf_counter() - cold_start
        cold_counter = cold_oracle.counter
        stats = store.stats()
        store.close()

        open_start = time.perf_counter()
        store = open_store(tmp)
        open_seconds = time.perf_counter() - open_start
        warm_oracle = StoredComparisonOracle(make_backend(), store)
        warm_yes, warm_wall = drive(warm_oracle.compare_batch)
        warm_counter = warm_oracle.counter
        store.close()

    direct_qps = n_queries / max(direct_wall, 1e-9)
    cold_qps = n_queries / max(cold_wall, 1e-9)
    warm_qps = n_queries / max(warm_wall, 1e-9)
    return {
        "n_queries": n_queries,
        "n_shards": int(n_shards),
        "group_commit_ms": float(group_commit_ms),
        "sync_mode": sync_mode,
        "cold_charged": cold_counter.charged_queries,
        "cold_hits": cold_counter.cached_queries,
        "warm_charged": warm_counter.charged_queries,
        "warm_hits": warm_counter.cached_queries,
        "outputs_identical": bool(direct_yes == cold_yes == warm_yes),
        "yes_answers": direct_yes,
        "n_appends": stats["n_appends"],
        "n_fsyncs": stats["n_fsyncs"],
        "measured": {
            "direct_wall_seconds": direct_wall,
            "cold_wall_seconds": cold_wall,
            "open_seconds": open_seconds,
            "warm_wall_seconds": warm_wall,
            "direct_qps": direct_qps,
            "cold_qps": cold_qps,
            # Steady state (store already open) and open-amortised views.
            "warm_qps": warm_qps,
            "warm_qps_amortized": n_queries / max(open_seconds + warm_wall, 1e-9),
            "warm_vs_direct": warm_qps / max(direct_qps, 1e-9),
            "cold_vs_direct": cold_qps / max(direct_qps, 1e-9),
            "appends_per_fsync": stats["n_appends"] / max(stats["n_fsyncs"], 1),
        },
    }


# --- incremental-maintenance workloads (BENCH_incremental.json) --------------


def run_incremental_count_max(
    n_initial: int = 300,
    n_ops: int = 200,
    mix: str = "balanced",
    noise: str = "hashed",
    seed: int = 0,
) -> Dict[str, Any]:
    """Amortized per-update Count-Max maintenance vs full batch recomputes.

    Runs the differential-testing driver itself, so every benchmark number
    comes from a stream whose incremental outputs were asserted bit-identical
    to the batch recomputes they are priced against.
    """
    stream = generate_edit_stream(int(n_initial), int(n_ops), mix=mix, seed=seed)
    return difftest_count_max(
        stream, seed=seed, noise=noise, check_every=max(1, int(n_ops) // 8)
    )


def run_incremental_kcenter(
    n: int = 1000,
    n_ops: int = 200,
    mix: str = "balanced",
    k: int = 8,
    backend: str = "lazy",
    seed: int = 0,
) -> Dict[str, Any]:
    """Amortized per-update greedy k-center repair vs full batch recomputes."""
    stream = generate_edit_stream(
        int(n), int(n_ops), mix=mix, seed=seed, dimension=BENCH_DIMENSION
    )
    return difftest_kcenter(
        stream, k=int(k), backend=backend, check_every=max(1, int(n_ops) // 8)
    )


def run_incremental_linkage(
    n_initial: int = 100,
    n_ops: int = 200,
    mix: str = "balanced",
    linkage: str = "single",
    seed: int = 0,
) -> Dict[str, Any]:
    """Amortized per-update dendrogram maintenance vs full batch recomputes."""
    stream = generate_edit_stream(
        int(n_initial), int(n_ops), mix=mix, seed=seed, dimension=BENCH_DIMENSION
    )
    return difftest_linkage(
        stream, linkage=linkage, check_every=max(1, int(n_ops) // 8)
    )
