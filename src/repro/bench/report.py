"""JSON emission for the standing benchmark artifacts.

One artifact per suite, named ``BENCH_<suite>.json`` (``BENCH_scaling.json``,
``BENCH_batch.json``), written atomically with sorted keys and a fixed
indentation so diffs between commits stay readable.  The payload separates
the deterministic columns (cell identity and seeded ``metrics`` — identical
across runs of the same code) from the measured columns (``measured``,
``wall_seconds``, ``peak_traced_mb``, ``rss_max_mb`` — properties of the
run machine), which is what makes the artifacts meaningful to compare over
time.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro import obs
from repro.bench.runner import BenchOutcome
from repro.serialization import json_safe

#: Bump when the artifact layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def _git_sha() -> Optional[str]:
    """Short sha of the commit the suite ran against, or ``None``.

    ``REPRO_GIT_SHA`` overrides (CI sets it; detached/worktree checkouts
    where ``git`` is unavailable can too), otherwise ask git directly.
    """
    sha = os.environ.get("REPRO_GIT_SHA")
    if sha:
        return sha.strip()
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else None


def _drop_none(mapping: Dict[str, Any]) -> Dict[str, Any]:
    """Strip ``None``-valued columns: a metric a cell does not have is
    omitted from the artifact, never emitted as ``null``."""
    return {key: value for key, value in mapping.items() if value is not None}


def outcome_row(outcome: BenchOutcome) -> Dict[str, Any]:
    """Flatten one outcome into an artifact cell row."""
    row = {
        "algorithm": outcome.cell.algorithm,
        "params": json_safe(dict(outcome.cell.params)),
        "seed": int(outcome.cell.seed),
        "metrics": _drop_none(json_safe(outcome.metrics)),
        "measured": _drop_none(json_safe(outcome.measured)),
        "wall_seconds": round(outcome.wall_seconds, 6),
        "peak_traced_mb": round(outcome.peak_traced_mb, 3),
        "rss_max_mb": round(outcome.rss_max_mb, 3),
    }
    if outcome.obs:
        # Present only on observed runs, so default artifacts diff cleanly.
        row["obs"] = json_safe(outcome.obs)
    return row


def bench_payload(
    suite: str, outcomes: Sequence[BenchOutcome], quick: bool
) -> Dict[str, Any]:
    """Full artifact payload for one suite.

    The payload is rendered with sorted keys, so every column added here —
    including the ``git_sha`` stamp and the optional ``obs`` summary —
    lands at a stable position and committed artifacts diff minimally.
    """
    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "quick": bool(quick),
        "generated_by": "python -m repro.bench run" + (" --quick" if quick else ""),
        "environment": _environment(),
        "git_sha": _git_sha(),
        "n_cells": len(outcomes),
        "cells": [outcome_row(o) for o in outcomes],
    }
    registry = obs.get_registry()
    if registry is not None:
        payload["obs"] = json_safe(registry.snapshot())
    return payload


def write_bench_report(
    out_dir: Path | str, suite: str, outcomes: Sequence[BenchOutcome], quick: bool
) -> Path:
    """Write ``BENCH_<suite>.json`` under *out_dir* atomically; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{suite}.json"
    payload = bench_payload(suite, outcomes, quick)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_bench_report(path: Path | str) -> Dict[str, Any]:
    """Load one artifact back (used by tests and trend tooling)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
