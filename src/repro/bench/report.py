"""JSON emission for the standing benchmark artifacts.

One artifact per suite, named ``BENCH_<suite>.json`` (``BENCH_scaling.json``,
``BENCH_batch.json``), written atomically with sorted keys and a fixed
indentation so diffs between commits stay readable.  The payload separates
the deterministic columns (cell identity and seeded ``metrics`` — identical
across runs of the same code) from the measured columns (``measured``,
``wall_seconds``, ``peak_traced_mb``, ``rss_max_mb`` — properties of the
run machine), which is what makes the artifacts meaningful to compare over
time.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Dict, Sequence

import numpy as np

from repro.bench.runner import BenchOutcome
from repro.serialization import json_safe

#: Bump when the artifact layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def _drop_none(mapping: Dict[str, Any]) -> Dict[str, Any]:
    """Strip ``None``-valued columns: a metric a cell does not have is
    omitted from the artifact, never emitted as ``null``."""
    return {key: value for key, value in mapping.items() if value is not None}


def outcome_row(outcome: BenchOutcome) -> Dict[str, Any]:
    """Flatten one outcome into an artifact cell row."""
    return {
        "algorithm": outcome.cell.algorithm,
        "params": json_safe(dict(outcome.cell.params)),
        "seed": int(outcome.cell.seed),
        "metrics": _drop_none(json_safe(outcome.metrics)),
        "measured": _drop_none(json_safe(outcome.measured)),
        "wall_seconds": round(outcome.wall_seconds, 6),
        "peak_traced_mb": round(outcome.peak_traced_mb, 3),
        "rss_max_mb": round(outcome.rss_max_mb, 3),
    }


def bench_payload(
    suite: str, outcomes: Sequence[BenchOutcome], quick: bool
) -> Dict[str, Any]:
    """Full artifact payload for one suite."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "quick": bool(quick),
        "generated_by": "python -m repro.bench run" + (" --quick" if quick else ""),
        "environment": _environment(),
        "n_cells": len(outcomes),
        "cells": [outcome_row(o) for o in outcomes],
    }


def write_bench_report(
    out_dir: Path | str, suite: str, outcomes: Sequence[BenchOutcome], quick: bool
) -> Path:
    """Write ``BENCH_<suite>.json`` under *out_dir* atomically; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{suite}.json"
    payload = bench_payload(suite, outcomes, quick)
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_bench_report(path: Path | str) -> Dict[str, Any]:
    """Load one artifact back (used by tests and trend tooling)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
