"""Benchmark cell specifications and deterministic planning.

A :class:`BenchSpec` declares one benchmark workload: the callable that runs
it and the parameter grids it sweeps at full and at quick scale.  Planning
mirrors the experiment engine — grids expand through
:func:`repro.engine.planner.expand_grid` and seeds derive from
:func:`repro.rng.derive_task_seeds` — so a given invocation always produces
the same ordered cell list, which is what makes successive ``BENCH_*.json``
artifacts comparable cell-for-cell across commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.bench import workloads
from repro.engine.planner import expand_grid
from repro.exceptions import InvalidParameterError
from repro.rng import derive_task_seeds

#: The suites the CLI can emit, in artifact order.
BENCH_SUITES = ("scaling", "batch", "service", "store", "incremental")


@dataclass(frozen=True)
class BenchCell:
    """One planned measurement: run *algorithm* with *params* at *seed*."""

    suite: str
    algorithm: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def label(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.suite}/{self.algorithm}[{inner}, seed={self.seed}]"

    def kwargs(self) -> Dict[str, Any]:
        return {**self.params, "seed": self.seed}


@dataclass(frozen=True)
class BenchSpec:
    """Declarative description of one benchmark workload.

    Attributes
    ----------
    name:
        Stable cell identifier (the ``algorithm`` column of the artifact).
    suite:
        Which artifact the cells land in (``"scaling"`` or ``"batch"``).
    runner:
        Callable ``run(seed=..., **params) -> metrics dict`` from
        :mod:`repro.bench.workloads`.
    description:
        One-line summary shown by ``python -m repro.bench list``.
    grid:
        Full-scale parameter grid (``{param: [values, ...]}``).
    quick_grid:
        Reduced grid used by ``--quick`` (CI and smoke runs).
    """

    name: str
    suite: str
    runner: Callable[..., Dict[str, Any]]
    description: str
    grid: Mapping[str, Sequence[Any]]
    quick_grid: Mapping[str, Sequence[Any]]

    def cells(self, quick: bool, seeds: Sequence[int]) -> List[BenchCell]:
        """Expand this spec into ordered cells for the given seeds."""
        grid = self.quick_grid if quick else self.grid
        return [
            BenchCell(self.suite, self.name, params, seed)
            for params in expand_grid(grid)
            for seed in seeds
        ]


_REGISTRY: Dict[str, BenchSpec] = {}


def register(spec: BenchSpec) -> BenchSpec:
    """Register *spec* under its name (names are unique across suites)."""
    if spec.suite not in BENCH_SUITES:
        raise InvalidParameterError(
            f"unknown bench suite {spec.suite!r}; known: {', '.join(BENCH_SUITES)}"
        )
    if spec.name in _REGISTRY:
        raise InvalidParameterError(f"bench spec {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_bench_spec(name: str) -> BenchSpec:
    """Look up a registered bench spec; raises ``KeyError`` with known names."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown bench spec {name!r}; known: {known}")
    return _REGISTRY[name]


def bench_spec_names(suite: Optional[str] = None) -> List[str]:
    """Registered spec names (optionally restricted to one suite), in order."""
    return [n for n, s in _REGISTRY.items() if suite is None or s.suite == suite]


def iter_bench_specs(suite: Optional[str] = None) -> Iterator[BenchSpec]:
    """Iterate registered specs, optionally restricted to one suite."""
    return iter([s for s in _REGISTRY.values() if suite is None or s.suite == suite])


def plan_cells(
    suite: str,
    quick: bool = False,
    n_seeds: int = 1,
    base_seed: int = 0,
) -> List[BenchCell]:
    """Expand every spec of *suite* into its ordered, seeded cell list."""
    if suite not in BENCH_SUITES:
        raise InvalidParameterError(
            f"unknown bench suite {suite!r}; known: {', '.join(BENCH_SUITES)}"
        )
    if n_seeds < 1:
        raise InvalidParameterError("a bench plan needs at least one seed")
    seeds = derive_task_seeds(base_seed, n_seeds)
    cells: List[BenchCell] = []
    for spec in iter_bench_specs(suite):
        cells.extend(spec.cells(quick, seeds))
    return cells


# --- built-in specs ----------------------------------------------------------

#: n values for the scaling suite.  The lazy backend carries the mid-range
#: cells; the dense backend stops at the dense memoisation limit; the disk
#: backend overlaps lazy at its large ns (so bit-identity across backends is
#: visible in the artifact) and alone carries the million-point cells.
_SCALING_NS_FULL = [1000, 5000, 20000, 50000]
_SCALING_NS_QUICK = [500, 2000]
_DENSE_NS_FULL = [1000, 5000]
_DENSE_NS_QUICK = [500]
_DISK_NS_FULL = [20000, 50000]
_DISK_NS_QUICK = [2000]
#: Million-point cells: disk backend only, and only for the workloads whose
#: access patterns revisit state (Count-Max's constant-anchor batches, greedy
#: k-center's repeated center rows).  An exact NN scan touches every row
#: exactly once, so a million-point scan would measure nothing but raw
#: evaluation throughput.
_DISK_NS_XL = [1_000_000]


def _scaling_grid(
    ns_lazy: Sequence[int],
    ns_dense: Sequence[int],
    ns_disk: Sequence[int],
) -> Dict[str, list]:
    # A plain cartesian n x backend grid; _ScalingSpec.cells drops the
    # out-of-range (backend, n) combinations after expansion.
    return {
        "n": sorted(set(list(ns_lazy) + list(ns_dense) + list(ns_disk))),
        "backend": ["lazy", "dense", "disk"],
    }


class _ScalingSpec(BenchSpec):
    """Scaling spec that limits each backend to its n range.

    Lazy cells span the whole grid; dense cells stop at the memoisation
    limit; disk cells cover the large-n overlap plus (when ``xl_disk``) the
    million-point tier.
    """

    #: Spec names whose full grid includes the million-point disk cells.
    XL_DISK_SPECS = frozenset({"count_max", "greedy_kcenter"})

    def cells(self, quick: bool, seeds: Sequence[int]) -> List[BenchCell]:
        ns_disk = set(_DISK_NS_QUICK if quick else _DISK_NS_FULL)
        if not quick and self.name in self.XL_DISK_SPECS:
            ns_disk |= set(_DISK_NS_XL)
        keep = {
            "lazy": set(_SCALING_NS_QUICK if quick else _SCALING_NS_FULL),
            "dense": set(_DENSE_NS_QUICK if quick else _DENSE_NS_FULL),
            "disk": ns_disk,
        }
        return [
            cell
            for cell in super().cells(quick, seeds)
            if cell.params["n"] in keep[cell.params["backend"]]
        ]


register(
    _ScalingSpec(
        name="count_max",
        suite="scaling",
        runner=workloads.run_count_max,
        description="Count-Max over a record sample via quadruplet queries",
        grid=_scaling_grid(_SCALING_NS_FULL, _DENSE_NS_FULL, _DISK_NS_FULL + _DISK_NS_XL),
        quick_grid=_scaling_grid(_SCALING_NS_QUICK, _DENSE_NS_QUICK, _DISK_NS_QUICK),
    )
)
register(
    _ScalingSpec(
        name="greedy_kcenter",
        suite="scaling",
        runner=workloads.run_greedy_kcenter,
        description="Greedy farthest-point k-center plus objective evaluation",
        grid=_scaling_grid(_SCALING_NS_FULL, _DENSE_NS_FULL, _DISK_NS_FULL + _DISK_NS_XL),
        quick_grid=_scaling_grid(_SCALING_NS_QUICK, _DENSE_NS_QUICK, _DISK_NS_QUICK),
    )
)
register(
    _ScalingSpec(
        name="nn_scan",
        suite="scaling",
        runner=workloads.run_nn_scan,
        description="Exact nearest-neighbour scans over all records",
        grid=_scaling_grid(_SCALING_NS_FULL, _DENSE_NS_FULL, _DISK_NS_FULL),
        quick_grid=_scaling_grid(_SCALING_NS_QUICK, _DENSE_NS_QUICK, _DISK_NS_QUICK),
    )
)
register(
    BenchSpec(
        name="count_max_batch",
        suite="batch",
        runner=workloads.run_count_max_batch,
        description="Batched Count-Max vs the scalar comparison loop",
        grid={"n": [2000]},
        quick_grid={"n": [400]},
    )
)
register(
    BenchSpec(
        name="pair_distances_batch",
        suite="batch",
        runner=workloads.run_pair_distances_batch,
        description="Batched pair_distances vs a scalar distance loop",
        grid={"n": [5000], "backend": ["lazy", "dense"], "m_pairs": [50000]},
        quick_grid={"n": [1000], "backend": ["lazy", "dense"], "m_pairs": [5000]},
    )
)
register(
    BenchSpec(
        name="service_throughput",
        suite="service",
        runner=workloads.run_service_throughput,
        description="Micro-batched crowd-service throughput vs per-query round trips",
        grid={
            "sessions": [4, 16, 32],
            "batch_window_ms": [2.0, 5.0, 10.0],
            "queries_per_session": [50],
        },
        # CI scale keeps the acceptance point — 16 concurrent sessions — and
        # windows short enough that coalescing beats per-query round trips
        # by >= 3x on every cell.
        quick_grid={
            "sessions": [16],
            "batch_window_ms": [2.0, 5.0],
            "queries_per_session": [25],
        },
    )
)
register(
    BenchSpec(
        name="store_dedup",
        suite="store",
        runner=workloads.run_store_dedup,
        description="Persistent-warehouse dedup: cross-session hit rate and query savings",
        grid={
            "sessions": [4, 8, 16],
            "replication": [1, 3],
            "queries_per_session": [50],
        },
        # CI scale keeps the acceptance point — >= 4 concurrent sessions —
        # and both replication regimes (pure dedup vs 3-vote aggregation).
        quick_grid={
            "sessions": [4],
            "replication": [1, 3],
            "queries_per_session": [25],
        },
    )
)
register(
    BenchSpec(
        name="store_scale",
        suite="store",
        runner=workloads.run_store_scale,
        description="Raw sharded-warehouse throughput: cold append, WAL replay, warm index",
        # Shard-count x fsync-policy grid: 0ms = sync="always" (the
        # no-group-commit baseline), positive windows batch fsyncs.
        grid={
            "n_shards": [1, 4, 16],
            "group_commit_ms": [0.0, 5.0, 50.0],
        },
        # CI scale keeps one always-fsync cell and the default-shaped
        # group-commit cell, at a fraction of the query volume.
        quick_grid={
            "n_shards": [8],
            "group_commit_ms": [0.0, 5.0],
            "n_queries": [6000],
        },
    )
)
# Incremental maintenance: amortized cost per update versus full recompute,
# measured by the differential-testing drivers themselves so every number is
# backed by a bit-identity assertion.  check_every inside the workloads is
# n_ops // 8, so each cell prices ~9 full recomputes against 200 updates.
register(
    BenchSpec(
        name="incremental_count_max",
        suite="incremental",
        runner=workloads.run_incremental_count_max,
        description="Incremental Count-Max duels per update vs batch recomputes",
        grid={
            "n_initial": [300, 1000],
            "mix": ["insert_heavy", "balanced", "delete_heavy"],
            "noise": ["hashed"],
        },
        quick_grid={"n_initial": [150], "mix": ["balanced", "delete_heavy"]},
    )
)
register(
    BenchSpec(
        name="incremental_kcenter",
        suite="incremental",
        runner=workloads.run_incremental_kcenter,
        description="Incremental greedy k-center distance rows per update vs recomputes",
        grid={
            "n": [1000, 5000],
            "mix": ["insert_heavy", "balanced", "delete_heavy"],
            "k": [8],
            "backend": ["lazy"],
        },
        # CI scale keeps the acceptance point — n = 5000, balanced mix —
        # where the amortized per-update cost beats a full recompute by
        # well over 10x (see BENCH_incremental.json).
        quick_grid={"n": [1000, 5000], "mix": ["balanced"], "k": [8]},
    )
)
register(
    BenchSpec(
        name="incremental_linkage",
        suite="incremental",
        runner=workloads.run_incremental_linkage,
        description="Incremental dendrogram distance evals per update vs recomputes",
        grid={
            "n_initial": [100, 200],
            "mix": ["insert_heavy", "balanced", "delete_heavy"],
            "linkage": ["single", "complete"],
        },
        quick_grid={"n_initial": [60], "mix": ["balanced"], "linkage": ["single"]},
    )
)
