"""Standing benchmark suite: the repo's machine-readable performance record.

Every PR can regenerate four JSON artifacts at the repository root —
``BENCH_scaling.json`` (wall-clock and peak memory per (algorithm, n,
backend) cell, up to n = 50,000 on the lazy metric backend),
``BENCH_batch.json`` (batched-versus-scalar speedups of the oracle layer),
``BENCH_service.json`` (crowd-service micro-batching throughput and
latency percentiles versus concurrent sessions x batch window) and
``BENCH_store.json`` (the persistent answer warehouse's cross-session hit
rate and query savings, cold and warm, versus sessions x replication
factor) — with one command::

    python -m repro.bench run --quick

The suite reuses the experiment engine's planning primitives
(:func:`repro.engine.planner.expand_grid`,
:func:`repro.rng.derive_task_seeds`) so cell expansion is deterministic:
identical invocations produce identical cell lists and identical seeded
metrics; only the timing columns vary run to run.  CI regenerates the quick
artifacts on every push and uploads them, turning the JSON files into a
tracked performance trajectory.  See ``docs/benchmarks.md`` for how to read
the artifacts.
"""

from repro.bench.report import (
    BENCH_SCHEMA_VERSION,
    bench_payload,
    write_bench_report,
)
from repro.bench.runner import BenchOutcome, measure_cell, run_cells
from repro.bench.specs import (
    BENCH_SUITES,
    BenchCell,
    BenchSpec,
    bench_spec_names,
    get_bench_spec,
    iter_bench_specs,
    plan_cells,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_SUITES",
    "BenchCell",
    "BenchOutcome",
    "BenchSpec",
    "bench_payload",
    "bench_spec_names",
    "get_bench_spec",
    "iter_bench_specs",
    "measure_cell",
    "plan_cells",
    "run_cells",
    "write_bench_report",
]
