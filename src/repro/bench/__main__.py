"""Command-line entry point for the standing benchmark suite.

Examples
--------
Regenerate both artifacts at quick (CI) scale in the current directory::

    python -m repro.bench run --quick

Full-scale scaling suite only (n up to 50,000 on the lazy backend)::

    python -m repro.bench run --suite scaling

List the cells a run would measure::

    python -m repro.bench list --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import obs
from repro.bench.report import write_bench_report
from repro.bench.runner import run_cells
from repro.bench.specs import BENCH_SUITES, iter_bench_specs, plan_cells
from repro.exceptions import InvalidParameterError
from repro.rng import derive_task_seeds


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the standing benchmark suite and emit BENCH_*.json artifacts.",
    )
    sub = parser.add_subparsers(dest="command")

    p_run = sub.add_parser("run", help="measure cells and write BENCH_<suite>.json")
    p_run.add_argument(
        "--suite",
        action="append",
        choices=BENCH_SUITES,
        default=None,
        help="suite(s) to run (repeatable; default: all)",
    )
    p_run.add_argument("--quick", action="store_true", help="CI-scale grids")
    p_run.add_argument(
        "--out-dir",
        default=".",
        help="directory for the BENCH_*.json artifacts (default: current directory)",
    )
    p_run.add_argument("--seeds", type=int, default=1, help="seeds per cell")
    p_run.add_argument(
        "--seed-base", type=int, default=0, help="base seed the cell seeds derive from"
    )
    p_run.add_argument("--quiet", action="store_true", help="no per-cell progress lines")
    p_run.add_argument(
        "--obs",
        action="store_true",
        help="record repro.obs metrics while measuring; each cell row carries "
        "its registry snapshot and the suite payload an aggregated one",
    )

    p_list = sub.add_parser("list", help="list specs and the cells they expand to")
    p_list.add_argument("--quick", action="store_true", help="expand the quick grids")

    return parser


def _cmd_run(args) -> int:
    if args.obs:
        obs.enable()
    suites = args.suite or list(BENCH_SUITES)
    for suite in suites:
        cells = plan_cells(
            suite, quick=args.quick, n_seeds=args.seeds, base_seed=args.seed_base
        )

        def progress(outcome, done, total):
            if not args.quiet:
                print(
                    f"[{done}/{total}] {outcome.cell.label()} "
                    f"({outcome.wall_seconds:.2f}s, peak {outcome.peak_traced_mb:.1f} MB)",
                    file=sys.stderr,
                )

        outcomes = run_cells(cells, progress=progress)
        path = write_bench_report(args.out_dir, suite, outcomes, quick=args.quick)
        print(f"bench: wrote {len(outcomes)} cell(s) to {path}")
    return 0


def _cmd_list(args) -> int:
    # The same seed derivation as `run` at its defaults, so listed labels
    # match the cells of an artifact produced by a default run.
    seeds = derive_task_seeds(0, 1)
    for suite in BENCH_SUITES:
        print(f"suite {suite}:")
        for spec in iter_bench_specs(suite):
            print(f"  {spec.name:24s} {spec.description}")
            for cell in spec.cells(args.quick, seeds=seeds):
                print(f"    {cell.label()}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return {"run": _cmd_run, "list": _cmd_list}[args.command](args)
    except InvalidParameterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
