"""Measurement harness for benchmark cells.

Cells run serially in the current process on purpose: per-cell wall-clock
and Python-heap peaks are only meaningful without co-tenant processes, and
``tracemalloc`` tracks the allocating interpreter.  Two memory columns are
recorded per cell:

* ``peak_traced_mb`` — peak Python-allocated memory *during the cell*, from
  ``tracemalloc`` (reset per cell; the number the bounded-memory claims of
  the lazy metric backend are asserted against), and
* ``rss_max_mb`` — the process-lifetime resident-set high-water mark from
  ``getrusage``.  It is monotone across cells (a later cell can never report
  less), so read it as "the suite so far fit in this much", not per-cell.
"""

from __future__ import annotations

import gc
import resource
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.bench.specs import BenchCell, get_bench_spec

#: Callback signature: (finished outcome, n_done, n_total).
ProgressFn = Callable[["BenchOutcome", int, int], None]


@dataclass
class BenchOutcome:
    """One measured cell: deterministic metrics plus its measured costs.

    ``metrics`` must reproduce exactly on re-runs of the same code;
    ``measured`` holds workload-internal stopwatch numbers (the batch
    suite's scalar/batched timings) that, like ``wall_seconds``, are
    properties of the run machine.
    """

    cell: BenchCell
    metrics: Dict[str, Any]
    measured: Dict[str, Any]
    wall_seconds: float
    peak_traced_mb: float
    rss_max_mb: float
    #: Per-cell obs registry snapshot; empty unless the suite ran with
    #: observation enabled (``python -m repro.bench run --obs``).
    obs: Dict[str, Any] = field(default_factory=dict)


def _rss_max_mb() -> float:
    """Process-lifetime peak RSS in MB (``ru_maxrss`` is KB on Linux, bytes on macOS)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024 * 1024 if sys.platform == "darwin" else 1024
    return peak / divisor


def measure_cell(cell: BenchCell) -> BenchOutcome:
    """Run one cell under tracemalloc and a wall clock.

    With observation enabled, the cell runs under an isolated
    :func:`repro.obs.capture` registry so its snapshot is a per-cell delta;
    the snapshot is folded back into the global registry afterwards and also
    attached to the outcome (and, from there, to the ``BENCH_*.json`` row).
    """
    runner = get_bench_spec(cell.algorithm).runner
    gc.collect()
    obs_snapshot: Dict[str, Any] = {}
    tracemalloc.start()
    started = time.perf_counter()
    try:
        if obs.enabled():
            with obs.capture() as registry:
                with obs.span("bench.cell", subsystem="bench", algorithm=cell.algorithm):
                    metrics = runner(**cell.kwargs())
                obs_snapshot = registry.snapshot()
            obs.merge_snapshot(obs_snapshot)
        else:
            metrics = runner(**cell.kwargs())
        peak_traced = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    metrics = dict(metrics)
    measured = dict(metrics.pop("measured", {}))
    return BenchOutcome(
        cell=cell,
        metrics=metrics,
        measured=measured,
        wall_seconds=time.perf_counter() - started,
        peak_traced_mb=peak_traced / (1024 * 1024),
        rss_max_mb=_rss_max_mb(),
        obs=obs_snapshot,
    )


def run_cells(
    cells: Sequence[BenchCell], progress: Optional[ProgressFn] = None
) -> List[BenchOutcome]:
    """Measure *cells* in order; returns one outcome per cell."""
    outcomes: List[BenchOutcome] = []
    for index, cell in enumerate(cells):
        outcome = measure_cell(cell)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome, index + 1, len(cells))
    return outcomes
