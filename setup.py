"""Setup shim for environments where PEP 517 editable installs are unavailable.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` on machines without
the ``wheel`` package (e.g. offline evaluation environments).
"""

from setuptools import setup

setup()
